package keysearch

import (
	"context"
	"fmt"

	"repro/internal/divq"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/topk"
	"repro/internal/trace"
)

// SearchRequest asks for the top-k most probable structured
// interpretations of a keyword query (the IQP ranking interface). The
// same DTO drives the library API and POST /v1/search.
type SearchRequest struct {
	// Query is the keyword query; "label:keyword" tokens restrict a
	// keyword to matching attributes (Section 2.2.7).
	Query string `json:"query"`
	// K caps the number of returned interpretations (0 = all).
	K int `json:"k,omitempty"`
	// RowLimit, when positive, executes each returned interpretation and
	// attaches up to RowLimit joined rows to Result.Preview.
	RowLimit int `json:"row_limit,omitempty"`
}

// DiversifyRequest asks for the top-k relevant-and-diverse
// interpretations (the DivQ interface). The same DTO drives the library
// API and POST /v1/diversify.
type DiversifyRequest struct {
	Query string `json:"query"`
	K     int    `json:"k,omitempty"`
	// Lambda trades relevance (1) against novelty (0).
	Lambda float64 `json:"lambda,omitempty"`
	// RowLimit, when positive, attaches result previews as in SearchRequest.
	RowLimit int `json:"row_limit,omitempty"`
}

// SearchResponse carries a ranked list of interpretations.
type SearchResponse struct {
	// Query echoes the keyword query.
	Query string `json:"query"`
	// SpaceSize is the number of interpretations materialised and ranked
	// before the top-k cut (for Diversify: before the non-empty filter).
	SpaceSize int `json:"space_size"`
	// Results are the ranked interpretations.
	Results []Result `json:"results"`
}

// Result is one structured interpretation of a keyword query. Its
// exported fields are JSON-serialisable and survive the HTTP round trip;
// the executable methods (Rows, Count) work on Results obtained directly
// from an Engine.
type Result struct {
	// Query renders the structured query in relational-algebra notation.
	Query string `json:"query"`
	// SQL is the equivalent SQL statement (the candidate-network-to-SQL
	// mapping of Section 2.2.6), rendered at wrap time; empty in the
	// (not normally reachable for materialised interpretations) case
	// that rendering fails.
	SQL string `json:"sql,omitempty"`
	// Probability is P(Q|K) normalised over the materialised space.
	Probability float64 `json:"probability"`
	// Tables lists the joined tables in join order.
	Tables []string `json:"tables"`
	// Aggregate names the aggregation operator ("count") for analytical
	// interpretations; empty for plain retrieval.
	Aggregate string `json:"aggregate,omitempty"`
	// Preview holds up to RowLimit executed rows when the request asked
	// for them (see Result.Rows for the key convention).
	Preview []map[string]string `json:"rows,omitempty"`

	q *query.Interpretation
	// snap is the snapshot the interpretation was ranked under; deferred
	// execution (Rows, Count, previews) reads it, so a result stays
	// consistent with its ranking even when mutations commit in between.
	snap *snapshot
}

// Count executes an aggregate interpretation and returns the number of
// results (also usable on plain interpretations as a cardinality probe).
func (r Result) Count() (int, error) {
	if r.q == nil {
		return 0, fmt.Errorf("keysearch: result is not executable (obtained from JSON?)")
	}
	plan, err := r.q.JoinPlan()
	if err != nil {
		return 0, err
	}
	return r.snap.db.Count(plan, 0)
}

// Rows executes the interpretation and returns up to limit joined rows;
// each row maps "table.column" to the value (occurrence index appended
// for self-joins: "table#2.column").
func (r Result) Rows(limit int) ([]map[string]string, error) {
	return r.rowsExec(limit, &relstore.LocalExecutor{DB: r.snap.db})
}

// rowsExec is Rows through a request-scoped plan executor, the seam that
// keeps deferred execution topology-blind: the same Result previews
// correctly whether the executor runs in-process or scatter-gathers
// across shards.
func (r Result) rowsExec(limit int, exec relstore.PlanExecutor) ([]map[string]string, error) {
	if r.q == nil {
		return nil, fmt.Errorf("keysearch: result is not executable (obtained from JSON?)")
	}
	plan, err := r.q.JoinPlan()
	if err != nil {
		return nil, err
	}
	jtts, err := exec.ExecutePlan(plan, limit)
	if err != nil {
		return nil, err
	}
	var out []map[string]string
	for _, jtt := range jtts {
		out = append(out, planRow(r.snap.db, plan, jtt.Rows))
	}
	return out, nil
}

// planRow assembles one joined row from executed row IDs: "table.column"
// keys, with the occurrence index appended for self-joins
// ("table#2.column"). Shared by Result.Rows and SearchRows so the naming
// convention cannot diverge.
func planRow(db *relstore.Database, plan *relstore.JoinPlan, rowIDs []int) map[string]string {
	row := make(map[string]string)
	occSeen := map[string]int{}
	for i, node := range plan.Nodes {
		t := db.Table(node.Table)
		occSeen[node.Table]++
		prefix := node.Table
		if occSeen[node.Table] > 1 {
			prefix = fmt.Sprintf("%s#%d", node.Table, occSeen[node.Table])
		}
		tuple, ok := t.Row(rowIDs[i])
		if !ok {
			continue
		}
		for ci, col := range t.Schema.Columns {
			row[prefix+"."+col.Name] = tuple.Values[ci]
		}
	}
	return row
}

// execProvider builds the plan executor for one request over its pinned
// snapshot and answer-cache view. The engine's own provider is
// localExec; a sharded coordinator substitutes its scatter-gather
// executor. Every provider must satisfy the PlanExecutor contract
// (exact Database.Execute semantics), which is what keeps responses
// byte-identical across topologies. ctx carries the request's trace
// (when tracing is on) so a provider can attribute execution work; a
// provider must never let it change results.
type execProvider func(ctx context.Context, s *snapshot, view relstore.SharedStore) relstore.PlanExecutor

// localExec is the single-process provider: plans run in place with the
// per-request selection cache (unless disabled), threaded through to the
// engine-lifetime answer cache via view. Under tracing, the view is
// wrapped to count answer-cache hits and the executor to time plan
// execution; with tracing off both wraps vanish (identical values, no
// indirection).
func (e *Engine) localExec(ctx context.Context, s *snapshot, view relstore.SharedStore) relstore.PlanExecutor {
	tr := trace.FromContext(ctx)
	view = tracedView(view, tr)
	var cache *relstore.SelectionCache
	if !e.cfg.execCacheOff {
		cache = relstore.NewSelectionCacheShared(view)
	}
	var exec relstore.PlanExecutor = &relstore.LocalExecutor{DB: s.db, Cache: cache}
	if tr != nil {
		exec = &tracedExecutor{inner: exec, tr: tr}
	}
	return exec
}

// attachPreviews executes each result through the request's executor and
// stores up to limit rows, checking the context between executions. One
// executor is shared across all previews of the response: the returned
// interpretations recombine the same keyword selections, so each is
// computed once per request (and shared across requests through the
// answer-cache view behind the executor).
func attachPreviews(ctx context.Context, results []Result, limit int, exec relstore.PlanExecutor) error {
	if limit <= 0 {
		return nil
	}
	for i := range results {
		if err := ctx.Err(); err != nil {
			return err
		}
		rows, err := results[i].rowsExec(limit, exec)
		if err != nil {
			continue
		}
		results[i].Preview = rows
	}
	return nil
}

// Search translates the keyword query into its top-k most probable
// structured interpretations (the IQP ranking interface). The context
// cancels candidate generation, interpretation materialisation, and
// ranking.
func (e *Engine) Search(ctx context.Context, req SearchRequest) (*SearchResponse, error) {
	return e.searchExec(ctx, req, e.localExec)
}

// searchExec is Search over an injectable executor provider.
func (e *Engine) searchExec(ctx context.Context, req SearchRequest, prov execProvider) (*SearchResponse, error) {
	tr := trace.FromContext(ctx)
	view := e.answerView(req.Query) // view before snapshot: see answerView
	s := e.current()
	ranked, _, err := e.interpret(ctx, s, req.Query)
	if err != nil {
		return nil, err
	}
	tr.Count("interpretations_ranked", int64(len(ranked)))
	resp := &SearchResponse{Query: req.Query, SpaceSize: len(ranked)}
	if req.K > 0 && len(ranked) > req.K {
		ranked = ranked[:req.K]
	}
	resp.Results = e.wrap(s, ranked)
	if req.RowLimit > 0 {
		sp := tr.Start("previews")
		err := attachPreviews(ctx, resp.Results, req.RowLimit, prov(ctx, s, view))
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	return resp, nil
}

// Diversify returns the top-k relevant-and-diverse interpretations (the
// DivQ interface). Interpretations with empty results are dropped first,
// as in DivQ.
func (e *Engine) Diversify(ctx context.Context, req DiversifyRequest) (*SearchResponse, error) {
	return e.diversifyExec(ctx, req, e.localExec)
}

// diversifyExec is Diversify over an injectable executor provider. The
// non-empty filter and the previews each get their own executor, mirroring
// the two per-phase selection caches the local path has always used.
func (e *Engine) diversifyExec(ctx context.Context, req DiversifyRequest, prov execProvider) (*SearchResponse, error) {
	tr := trace.FromContext(ctx)
	view := e.answerView(req.Query) // view before snapshot: see answerView
	s := e.current()
	ranked, _, err := e.interpret(ctx, s, req.Query)
	if err != nil {
		return nil, err
	}
	tr.Count("interpretations_ranked", int64(len(ranked)))
	resp := &SearchResponse{Query: req.Query, SpaceSize: len(ranked)}
	if len(ranked) > 25 {
		ranked = ranked[:25]
	}
	sp := tr.Start("filter_nonempty")
	nonEmpty, err := divq.FilterNonEmptyExec(ctx, prov(ctx, s, view), ranked)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = tr.Start("diversify")
	div := divq.Diversify(nonEmpty, divq.Config{Lambda: req.Lambda, K: req.K})
	sp.End()
	resp.Results = e.wrap(s, div)
	if req.RowLimit > 0 {
		sp = tr.Start("previews")
		err := attachPreviews(ctx, resp.Results, req.RowLimit, prov(ctx, s, view))
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	return resp, nil
}

// RowsRequest asks for the k globally best concrete result rows across
// all interpretations (the top-k query processing of Section 2.2.5).
type RowsRequest struct {
	Query string `json:"query"`
	K     int    `json:"k,omitempty"`
}

// RowResult is one concrete, scored search result: a joined row produced
// by one interpretation, with its global score (interpretation
// probability × tuple relevance).
type RowResult struct {
	// Query renders the producing interpretation.
	Query string `json:"query"`
	// Score is the global result score; results are returned descending.
	Score float64 `json:"score"`
	// Row maps "table.column" to the value (see Result.Rows for the
	// self-join naming convention).
	Row map[string]string `json:"row"`
}

// RowsResponse carries globally ranked concrete rows.
type RowsResponse struct {
	Query string      `json:"query"`
	Rows  []RowResult `json:"rows"`
}

// SearchRows retrieves the k globally best concrete results across all
// interpretations of the keyword query, using threshold-style early
// stopping so low-probability interpretations are never executed.
func (e *Engine) SearchRows(ctx context.Context, req RowsRequest) (*RowsResponse, error) {
	return e.searchRowsExec(ctx, req, e.localExec)
}

// searchRowsExec is SearchRows over an injectable executor provider.
func (e *Engine) searchRowsExec(ctx context.Context, req RowsRequest, prov execProvider) (*RowsResponse, error) {
	tr := trace.FromContext(ctx)
	view := e.answerView(req.Query) // view before snapshot: see answerView
	s := e.current()
	ranked, _, err := e.interpret(ctx, s, req.Query)
	if err != nil {
		return nil, err
	}
	tr.Count("interpretations_ranked", int64(len(ranked)))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := tr.Start("execute")
	results, _, err := topk.TopKContext(ctx, s.db, ranked, &topk.TFScorer{IX: s.ix}, topk.Options{
		K: req.K, PerInterpretationLimit: 4 * req.K, Parallelism: e.cfg.parallelism,
		Exec: prov(ctx, s, view),
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	resp := &RowsResponse{Query: req.Query}
	for _, r := range results {
		plan, err := r.Q.JoinPlan()
		if err != nil {
			return nil, err
		}
		resp.Rows = append(resp.Rows, RowResult{
			Query: r.Q.String(), Score: r.Score, Row: planRow(s.db, plan, r.Rows),
		})
	}
	return resp, nil
}
