package benchmut

import "testing"

// sharedEnv keeps one environment across the benchmark legs, as cmd/bench
// does, so the dataset is built once.
var sharedEnv = NewEnv()

// TestVerify proves the harness workload is sound: after an even number
// of batches the mutated engine answers byte-identically to a pristine
// reload — the same differential bar the engine tests enforce.
func TestVerify(t *testing.T) {
	if err := NewEnv().Verify(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMutationsRebuild(b *testing.B)     { sharedEnv.Run(b, ModeRebuild) }
func BenchmarkMutationsApply(b *testing.B)       { sharedEnv.Run(b, ModeApply) }
func BenchmarkMutationsApplySearch(b *testing.B) { sharedEnv.Run(b, ModeApplySearch) }
