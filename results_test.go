package keysearch

import (
	"reflect"
	"strings"
	"testing"
)

func TestSearchRowsTopK(t *testing.T) {
	eng := builtEngine(t)
	resp, err := eng.SearchRows(bg, RowsRequest{Query: "hanks", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	rows := resp.Rows
	if len(rows) == 0 {
		t.Fatal("no results")
	}
	for i, r := range rows {
		if r.Score <= 0 {
			t.Fatalf("non-positive score: %+v", r)
		}
		if i > 0 && r.Score > rows[i-1].Score {
			t.Fatal("results not sorted by score")
		}
		if r.Query == "" || len(r.Row) == 0 {
			t.Fatalf("incomplete result: %+v", r)
		}
	}
	// The best result must actually contain the keyword.
	found := false
	for _, v := range rows[0].Row {
		if strings.Contains(strings.ToLower(v), "hanks") {
			found = true
		}
	}
	if !found {
		t.Fatalf("top result does not contain the keyword: %v", rows[0].Row)
	}
	// Errors propagate.
	if _, err := eng.SearchRows(bg, RowsRequest{Query: "zzzz", K: 3}); err == nil {
		t.Fatal("unmatched query accepted")
	}
}

func TestParseLabeled(t *testing.T) {
	toks, labels := parseLabeled("name:hanks terminal")
	if !reflect.DeepEqual(toks, []string{"hanks", "terminal"}) {
		t.Fatalf("toks = %v", toks)
	}
	if labels[0] != "name" {
		t.Fatalf("labels = %v", labels)
	}
	if _, ok := labels[1]; ok {
		t.Fatal("unlabelled token got a label")
	}
	// table.column labels.
	toks, labels = parseLabeled("actor.name:tom")
	if len(toks) != 1 || labels[0] != "actor.name" {
		t.Fatalf("toks=%v labels=%v", toks, labels)
	}
	// A label applies to every token of a multi-token keyword.
	toks, labels = parseLabeled("title:the-terminal")
	if len(toks) != 2 || labels[0] != "title" || labels[1] != "title" {
		t.Fatalf("toks=%v labels=%v", toks, labels)
	}
	// Plain queries have no labels.
	_, labels = parseLabeled("hanks terminal")
	if len(labels) != 0 {
		t.Fatalf("labels = %v", labels)
	}
}

func TestLabeledSearchRestrictsAttribute(t *testing.T) {
	eng := builtEngine(t)
	// "london" is ambiguous (actor name vs movie title); labelling it
	// forces the title reading.
	results := search(t, eng, "title:london", 10)
	if len(results) == 0 {
		t.Fatal("no labelled results")
	}
	for _, r := range results {
		if !strings.Contains(r.Query, "title") {
			t.Fatalf("labelled search leaked other attributes: %v", r.Query)
		}
	}
	// Unambiguous count must be below the unlabelled one.
	plain := search(t, eng, "london", 10)
	if len(results) >= len(plain) {
		t.Fatalf("label did not restrict: %d vs %d", len(results), len(plain))
	}
	// A label matching nothing fails cleanly.
	if _, err := eng.Search(bg, SearchRequest{Query: "year:london", K: 10}); err == nil {
		t.Fatal("unsatisfiable label accepted")
	}
}

func TestSegmentationForcesPhrase(t *testing.T) {
	// Build an engine where "tom hanks" always co-occur in actor.name and
	// "tom" also appears in a title (ambiguity the phrase removes).
	mk := func(segment bool) *Engine {
		var opts []Option
		if segment {
			opts = append(opts, WithSegmentPhrases(0.8))
		}
		eng, err := New(movieSchema(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		rows := [][]string{
			{"actor", "a1", "Tom Hanks"},
			{"actor", "a2", "Tom Hanks"},
			{"movie", "m1", "Tom and the River", "1995"},
			{"movie", "m2", "Hanks Boulevard", "2010"},
			{"acts", "a1", "m1", "Sam"},
		}
		for _, r := range rows {
			if err := eng.Insert(r[0], r[1:]...); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Build(); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	plain := mk(false)
	seg := mk(true)
	plainResults := search(t, plain, "tom hanks", 0)
	segResults := search(t, seg, "tom hanks", 0)
	if len(segResults) >= len(plainResults) {
		t.Fatalf("segmentation did not prune: %d vs %d", len(segResults), len(plainResults))
	}
	// Every surviving complete interpretation binds both tokens to one
	// attribute.
	for _, r := range segResults {
		if strings.Contains(r.Query, "tom") && strings.Contains(r.Query, "hanks") &&
			!strings.Contains(r.Query, "{tom,hanks}") && !strings.Contains(r.Query, "{hanks,tom}") {
			t.Fatalf("scattered phrase survived: %v", r.Query)
		}
	}
}

func TestSegmentationIgnoresNonPhrases(t *testing.T) {
	eng, err := New(movieSchema(), WithSegmentPhrases(0))
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]string{
		{"actor", "a1", "Tom Hanks"},
		{"actor", "a2", "Tom Cruise"},
		{"movie", "m1", "The Terminal", "2004"},
		{"acts", "a1", "m1", "Viktor"},
	}
	for _, r := range rows {
		if err := eng.Insert(r[0], r[1:]...); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	// "hanks terminal" never co-occur in one value: no segment, and the
	// join interpretation must survive.
	results := search(t, eng, "hanks terminal", 0)
	foundJoin := false
	for _, r := range results {
		if len(r.Tables) == 3 {
			foundJoin = true
		}
	}
	if !foundJoin {
		t.Fatal("segmentation pruned a non-phrase join reading")
	}
}

func TestAggregateQueries(t *testing.T) {
	eng, err := New(movieSchema(), WithAggregates())
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]string{
		{"actor", "a1", "Tom Hanks"},
		{"movie", "m1", "The Terminal", "2004"},
		{"movie", "m2", "Cast Away", "2000"},
		{"acts", "a1", "m1", "Viktor"},
		{"acts", "a1", "m2", "Chuck"},
	}
	for _, r := range rows {
		if err := eng.Insert(r[0], r[1:]...); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	// "number hanks": the analytical reading COUNT(σ_{hanks}(…)) must
	// appear among the interpretations.
	results := search(t, eng, "number hanks", 0)
	var agg *Result
	for i := range results {
		if results[i].Aggregate == "count" {
			agg = &results[i]
			break
		}
	}
	if agg == nil {
		t.Fatalf("no aggregate interpretation found in %d results", len(results))
	}
	if !strings.Contains(agg.Query, "COUNT(") {
		t.Fatalf("aggregate rendering = %q", agg.Query)
	}
	n, err := agg.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatalf("count = %d", n)
	}
	// "number" is only interpretable as the operator here, so every
	// complete interpretation is analytical; a query without an
	// aggregation keyword stays plain.
	plain := search(t, eng, "hanks", 0)
	for _, r := range plain {
		if r.Aggregate != "" {
			t.Fatalf("plain query got an aggregate reading: %v", r.Query)
		}
	}
	// With aggregates disabled, "number" has no interpretation at all
	// (it does not occur as a value in this fixture).
	off, err := New(movieSchema())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := off.Insert(r[0], r[1:]...); err != nil {
			t.Fatal(err)
		}
	}
	if err := off.Build(); err != nil {
		t.Fatal(err)
	}
	offResults := search(t, off, "number hanks", 0)
	for _, r := range offResults {
		if r.Aggregate != "" {
			t.Fatal("aggregate interpretation appeared while disabled")
		}
	}
}

func TestSearchTreesBaseline(t *testing.T) {
	eng := builtEngine(t)
	trees, err := eng.SearchTrees(bg, "hanks terminal", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 {
		t.Fatal("no tuple trees")
	}
	best := trees[0]
	if best.Weight != 2 || len(best.Rows) != 3 {
		t.Fatalf("best tree = %+v", best)
	}
	// It connects Tom Hanks to The Terminal.
	joined := best.String()
	if !strings.Contains(joined, "Tom Hanks") || !strings.Contains(joined, "The Terminal") {
		t.Fatalf("tree = %s", joined)
	}
	// Errors and ordering.
	if _, err := eng.SearchTrees(bg, "", 5); err == nil {
		t.Fatal("empty query accepted")
	}
	for i := 1; i < len(trees); i++ {
		if trees[i].Weight < trees[i-1].Weight {
			t.Fatal("trees not ordered by weight")
		}
	}
	unbuilt, err := New(movieSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := unbuilt.SearchTrees(bg, "x", 1); err == nil {
		t.Fatal("search before Build accepted")
	}
}
