package keysearch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// FuzzApplyMutations drives arbitrary mutation scripts against a small
// engine and enforces the incremental-maintenance contract on every
// input: whatever sequence of batches (valid or rejected) the bytes
// decode to, the engine must stay internally consistent and answer
// byte-identically to an engine freshly built over the surviving rows.
//
// Script encoding (one mutation per 3-byte group, batch boundaries every
// 1 + b%3 mutations): byte 0 selects the op and table, byte 1 the row
// key, byte 2 the replacement words. Invalid mutations (missing keys,
// duplicate inserts) are expected — rejected batches must change
// nothing.
func FuzzApplyMutations(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{9, 200, 13, 77, 0, 0, 255, 31, 8})
	f.Add([]byte("insert update delete churn"))
	f.Add(bytes.Repeat([]byte{42, 7}, 24))

	words := []string{"tom", "hanks", "london", "sky", "mail", "stone", "stone stone", ""}

	f.Fuzz(func(t *testing.T, script []byte) {
		eng := fuzzEngine(t)
		serial := 0
		var batch []Mutation
		flush := func() {
			if len(batch) == 0 {
				return
			}
			before := eng.Epoch()
			if _, err := eng.Apply(bg, batch); err != nil {
				// Rejected batches must be invisible.
				if eng.Epoch() != before {
					t.Fatalf("rejected batch advanced epoch: %v", err)
				}
			}
			batch = nil
		}
		for i := 0; i+2 < len(script); i += 3 {
			op, kb, wb := script[i], script[i+1], script[i+2]
			table := "actor"
			if op&1 == 1 {
				table = "movie"
			}
			key := fmt.Sprintf("%s%d", table[:1], kb%16)
			switch op % 3 {
			case 0:
				serial++
				vals := []string{fmt.Sprintf("f%d", serial), words[int(wb)%len(words)]}
				if table == "movie" {
					vals = append(vals, fmt.Sprintf("%d", 1990+int(wb)%30))
				}
				batch = append(batch, Mutation{Op: OpInsert, Table: table, Values: vals})
			case 1:
				vals := []string{key, words[int(wb)%len(words)]}
				if table == "movie" {
					vals = append(vals, fmt.Sprintf("%d", 1990+int(wb)%30))
				}
				batch = append(batch, Mutation{Op: OpUpdate, Table: table, Key: key, Values: vals})
			default:
				batch = append(batch, Mutation{Op: OpDelete, Table: table, Key: key})
			}
			if len(batch) >= 1+int(op)%3 {
				flush()
			}
		}
		flush()

		// Differential bar: fresh build over the surviving rows.
		fresh := fuzzRebuild(t, eng)
		if got, want := eng.NumRows(), fresh.NumRows(); got != want {
			t.Fatalf("NumRows: mutated %d, rebuilt %d", got, want)
		}
		gk, wk := eng.Keywords("", 0), fresh.Keywords("", 0)
		gj, _ := json.Marshal(gk)
		wj, _ := json.Marshal(wk)
		if !bytes.Equal(gj, wj) {
			t.Fatalf("term dictionaries diverge:\n mutated %s\n rebuilt %s", gj, wj)
		}
		for _, q := range []string{"tom", "london stone", "hanks terminal", "sky"} {
			got, gotErr := eng.Search(bg, SearchRequest{Query: q, K: 4, RowLimit: 2})
			want, wantErr := fresh.Search(bg, SearchRequest{Query: q, K: 4, RowLimit: 2})
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("Search(%q) errors diverge: %v vs %v", q, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			gj, _ := json.Marshal(got)
			wj, _ := json.Marshal(want)
			if !bytes.Equal(gj, wj) {
				t.Fatalf("Search(%q) diverges:\n mutated %s\n rebuilt %s", q, gj, wj)
			}
		}
	})
}

// fuzzEngine builds the small fixed engine every fuzz execution starts
// from. Keys follow the a<n>/m<n> shape the script generator addresses.
func fuzzEngine(t *testing.T) *Engine {
	t.Helper()
	eng, err := New(movieSchema(), WithMutations(), WithCoOccurrence())
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]string{
		{"actor", "a0", "Tom Hanks"},
		{"actor", "a1", "Jack London"},
		{"actor", "a2", "Sky Stone"},
		{"movie", "m0", "The Terminal", "2004"},
		{"movie", "m1", "Sky Mail", "1999"},
		{"acts", "a0", "m0", "Viktor"},
		{"acts", "a1", "m1", "Joe"},
		{"acts", "a2", "m1", "Clerk"},
	}
	for _, r := range rows {
		if err := eng.Insert(r[0], r[1:]...); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// fuzzRebuild is rebuiltEngine without testing.T fatality differences —
// shared here for clarity of the fuzz body.
func fuzzRebuild(t *testing.T, eng *Engine) *Engine {
	t.Helper()
	return rebuiltEngine(t, eng, WithMutations(), WithCoOccurrence())
}
