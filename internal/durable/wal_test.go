package durable

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWALAppendRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, recs, err := RecoverWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh wal has %d records", len(recs))
	}
	for epoch := uint64(1); epoch <= 3; epoch++ {
		if err := w.Append(epoch, []byte{byte(epoch), 0xFF}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != 3 {
		t.Fatalf("Records = %d, want 3", w.Records())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, recs, err = RecoverWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Epoch != uint64(i+1) || !bytes.Equal(r.Body, []byte{byte(i + 1), 0xFF}) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

// TestWALTornTail truncates the log at every byte offset inside the
// final record and asserts recovery returns exactly the fully written
// prefix, then that appending after recovery produces a clean log.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _, err := RecoverWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("first-batch")); err != nil {
		t.Fatal(err)
	}
	prefixLen := len(AppendRecord(nil, 1, []byte("first-batch")))
	if err := w.Append(2, []byte("second-batch")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := prefixLen; cut < len(full); cut++ {
		torn := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tw, recs, err := RecoverWAL(torn, true)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != 1 || recs[0].Epoch != 1 {
			t.Fatalf("cut %d: recovered %d records", cut, len(recs))
		}
		// The torn tail must be gone: an append now yields a log whose
		// scan returns both records.
		if err := tw.Append(2, []byte("retry")); err != nil {
			t.Fatal(err)
		}
		tw.Close()
		raw, _ := os.ReadFile(torn)
		recs2, valid := ScanWAL(raw)
		if len(recs2) != 2 || valid != len(raw) {
			t.Fatalf("cut %d: post-recovery log invalid (%d records, %d/%d valid)",
				cut, len(recs2), valid, len(raw))
		}
	}
}

// TestWALBitFlip corrupts one byte of a middle record: recovery must
// stop before it, keeping the valid prefix only.
func TestWALBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := RecoverWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := uint64(1); epoch <= 3; epoch++ {
		if err := w.Append(epoch, bytes.Repeat([]byte{byte(epoch)}, 16)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	raw, _ := os.ReadFile(path)
	recLen := len(AppendRecord(nil, 1, bytes.Repeat([]byte{1}, 16)))
	raw[recLen+walHeaderSize+3] ^= 0x01 // inside record 2's payload
	recs, valid := ScanWAL(raw)
	if len(recs) != 1 || valid != recLen {
		t.Fatalf("bit flip: %d records, valid=%d, want 1 record / %d", len(recs), valid, recLen)
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := RecoverWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("gone after checkpoint")); err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 {
		t.Fatalf("Records after Reset = %d", w.Records())
	}
	if err := w.Append(2, []byte("next")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	raw, _ := os.ReadFile(path)
	recs, _ := ScanWAL(raw)
	if len(recs) != 1 || recs[0].Epoch != 2 {
		t.Fatalf("post-reset log = %+v", recs)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("content = %q", got)
	}
	// Overwrite: readers must see old or new, and no temp litter stays.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v2"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2" {
		t.Fatalf("content = %q", got)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(ents))
	}
}
