package admission

import (
	"testing"
	"time"
)

// synthSource models a serving stack with a known concurrency knee:
// p99 is flat at base while the limit is at or below the knee, and
// grows linearly (steeply, slope per knee-width) beyond it. This is
// the synthetic latency source the rig drives the controller with —
// no clocks, no sleeping, pure arithmetic.
type synthSource struct {
	base  time.Duration
	knee  int
	slope float64
}

func (s synthSource) p99(limit int) time.Duration {
	if limit <= s.knee {
		return s.base
	}
	excess := float64(limit-s.knee) / float64(s.knee)
	return time.Duration(float64(s.base) * (1 + s.slope*excess))
}

func (s synthSource) window(limit int) Window {
	return Window{Completed: 50, P99: s.p99(limit)}
}

func testSource() synthSource {
	return synthSource{base: 5 * time.Millisecond, knee: 24, slope: 4}
}

func testConfig() Config {
	return Config{MinLimit: 2, MaxLimit: 128}
}

// drive feeds n windows of the synthetic source into the controller
// and returns the limit trace (one entry per window, post-decision).
func drive(c *Controller, src synthSource, n int) []int {
	trace := make([]int, n)
	for i := range trace {
		c.Observe(src.window(c.Limit()))
		trace[i] = c.Limit()
	}
	return trace
}

// TestConvergesToKnee is the headline rig assertion: starting from the
// floor, the governor must find the synthetic knee within a bounded
// number of windows and then stay within ±25% of it — the sawtooth is
// allowed, drifting off is not.
func TestConvergesToKnee(t *testing.T) {
	src := testSource()
	c := NewController(testConfig())

	const total, settle = 240, 80
	trace := drive(c, src, total)

	lo := int(float64(src.knee) * 0.75)
	hi := int(float64(src.knee)*1.25) + 1
	for i := settle; i < total; i++ {
		if trace[i] < lo || trace[i] > hi {
			t.Fatalf("window %d: limit %d outside ±25%% knee band [%d, %d]\ntrace tail: %v",
				i, trace[i], lo, hi, trace[max(0, i-10):i+1])
		}
	}

	var sum float64
	for _, l := range trace[settle:] {
		sum += float64(l)
	}
	mean := sum / float64(total-settle)
	if mean < 0.75*float64(src.knee) || mean > 1.25*float64(src.knee) {
		t.Fatalf("settled mean limit %.1f not within ±25%% of knee %d", mean, src.knee)
	}
}

// TestBoundedOscillation pins the sawtooth amplitude after
// convergence: peak-to-trough must stay under 40% of the knee (the
// additive step plus one multiplicative cut), not grow without bound.
func TestBoundedOscillation(t *testing.T) {
	src := testSource()
	c := NewController(testConfig())

	trace := drive(c, src, 240)
	settled := trace[80:]
	minL, maxL := settled[0], settled[0]
	for _, l := range settled {
		minL = min(minL, l)
		maxL = max(maxL, l)
	}
	if spread := maxL - minL; spread > int(0.4*float64(src.knee))+1 {
		t.Fatalf("oscillation spread %d (limits %d..%d) exceeds 40%% of knee %d",
			spread, minL, maxL, src.knee)
	}
}

// TestBacksOffWithinOneWindow injects a latency spike into a
// converged controller and requires a multiplicative cut on the very
// next observed window.
func TestBacksOffWithinOneWindow(t *testing.T) {
	src := testSource()
	c := NewController(testConfig())

	// Converge, then advance until the controller just increased so
	// the spike does not land inside a post-backoff cooldown hold.
	drive(c, src, 120)
	for i := 0; c.Observe(src.window(c.Limit())) != Increase; i++ {
		if i > 20 {
			t.Fatal("controller never increased after convergence")
		}
	}

	before := c.Limit()
	d := c.Observe(Window{Completed: 50, P99: 10 * src.base})
	if d != Backoff {
		t.Fatalf("spike window decision = %v, want Backoff", d)
	}
	want := int(float64(before) * c.Config().Backoff)
	if want < c.Config().MinLimit {
		want = c.Config().MinLimit
	}
	if c.Limit() != want {
		t.Fatalf("post-spike limit = %d, want multiplicative cut %d of %d", c.Limit(), want, before)
	}
}

// TestMonotoneBackoffUnderSustainedSpike holds the spike for many
// windows: the limit must decrease monotonically to the floor and
// never dip below it, and every cut must be multiplicative.
func TestMonotoneBackoffUnderSustainedSpike(t *testing.T) {
	src := testSource()
	cfg := testConfig()
	c := NewController(cfg)
	drive(c, src, 120)

	spike := Window{Completed: 50, P99: 20 * src.base}
	prev := c.Limit()
	for i := 0; i < 40; i++ {
		d := c.Observe(spike)
		l := c.Limit()
		if l > prev {
			t.Fatalf("spike window %d: limit rose %d -> %d", i, prev, l)
		}
		if d == Backoff {
			want := int(float64(prev) * c.Config().Backoff)
			if want < cfg.MinLimit {
				want = cfg.MinLimit
			}
			if l != want {
				t.Fatalf("spike window %d: cut %d -> %d, want %d", i, prev, l, want)
			}
		}
		if l < cfg.MinLimit {
			t.Fatalf("spike window %d: limit %d below floor %d", i, l, cfg.MinLimit)
		}
		prev = l
	}
	if c.Limit() != cfg.MinLimit {
		t.Fatalf("sustained spike: limit %d never reached floor %d", c.Limit(), cfg.MinLimit)
	}
}

// TestRecoversAfterSpike ends the spike and requires the controller
// to climb back into the knee band — the reference latency must not
// have been poisoned by the degraded windows.
func TestRecoversAfterSpike(t *testing.T) {
	src := testSource()
	c := NewController(testConfig())
	drive(c, src, 120)
	for i := 0; i < 16; i++ {
		c.Observe(Window{Completed: 50, P99: 20 * src.base})
	}
	if c.Limit() != c.Config().MinLimit {
		t.Fatalf("setup: expected floor after sustained spike, got %d", c.Limit())
	}

	trace := drive(c, src, 60)
	final := trace[len(trace)-1]
	if final < int(0.75*float64(src.knee)) {
		t.Fatalf("no recovery: limit %d after 60 healthy windows, knee %d\ntrace: %v",
			final, src.knee, trace)
	}
}

// TestSparseWindowHolds: a window with too few completions must not
// move the limit, no matter how bad its p99 looks.
func TestSparseWindowHolds(t *testing.T) {
	c := NewController(testConfig())
	drive(c, testSource(), 40)
	before := c.Limit()
	d := c.Observe(Window{Completed: 2, P99: time.Minute})
	if d != Hold || c.Limit() != before {
		t.Fatalf("sparse window: decision %v limit %d, want Hold at %d", d, c.Limit(), before)
	}
}

// TestCeilingHolds: with the knee above the ceiling, the controller
// parks at MaxLimit and reports Hold, never exceeding the bound.
func TestCeilingHolds(t *testing.T) {
	src := synthSource{base: 5 * time.Millisecond, knee: 1000, slope: 4}
	cfg := Config{MinLimit: 2, MaxLimit: 16}
	c := NewController(cfg)
	trace := drive(c, src, 40)
	for i, l := range trace {
		if l > cfg.MaxLimit {
			t.Fatalf("window %d: limit %d above ceiling %d", i, l, cfg.MaxLimit)
		}
	}
	if c.Limit() != cfg.MaxLimit {
		t.Fatalf("limit %d, want parked at ceiling %d", c.Limit(), cfg.MaxLimit)
	}
	if d := c.Observe(src.window(c.Limit())); d != Hold {
		t.Fatalf("at ceiling: decision %v, want Hold", d)
	}
}

// TestDefaultsAndState covers configuration defaulting and the
// exported state snapshot.
func TestDefaultsAndState(t *testing.T) {
	c := NewController(Config{})
	cfg := c.Config()
	if cfg.MinLimit != 1 || cfg.MaxLimit != 1024 || cfg.InitialLimit != 1 {
		t.Fatalf("unexpected defaulted bounds: %+v", cfg)
	}
	if cfg.Backoff != 0.75 || cfg.Degrade != 0.3 || cfg.Increase != 1 {
		t.Fatalf("unexpected defaulted tuning: %+v", cfg)
	}
	if c.Limit() != 1 {
		t.Fatalf("initial limit = %d, want 1", c.Limit())
	}

	c.Observe(Window{Completed: 50, P99: 10 * time.Millisecond})
	st := c.State()
	if st.Windows != 1 || st.Increases != 1 || st.Limit != 2 {
		t.Fatalf("state after one healthy window: %+v", st)
	}
	if st.RefP99MS <= 0 {
		t.Fatalf("reference p99 not seeded: %+v", st)
	}

	// Invalid bounds are reconciled, not crashed on.
	c2 := NewController(Config{MinLimit: 8, MaxLimit: 4, InitialLimit: 100, Cooldown: -3})
	if c2.Config().MaxLimit != 8 || c2.Limit() != 8 {
		t.Fatalf("bound reconciliation: %+v limit %d", c2.Config(), c2.Limit())
	}
}

// TestDecisionString pins the human-readable decision labels used in
// logs.
func TestDecisionString(t *testing.T) {
	if Hold.String() != "hold" || Increase.String() != "increase" || Backoff.String() != "backoff" {
		t.Fatal("decision labels drifted")
	}
}
