package expt

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/ranking"
)

// UniformScorer is the base line probability estimate of Section 3.8.2:
// all structured queries and query construction options equally likely.
type UniformScorer struct{ Cat *query.Catalog }

// KeywordProb returns 1 for every interpretation (uniform).
func (u *UniformScorer) KeywordProb(query.KeywordInterpretation) float64 { return 1 }

// Catalog returns the template catalogue.
func (u *UniformScorer) Catalog() *query.Catalog { return u.Cat }

// Rank assigns equal probability to every interpretation.
func (u *UniformScorer) Rank(space []*query.Interpretation) []prob.Scored {
	out := make([]prob.Scored, len(space))
	for i, q := range space {
		out[i] = prob.Scored{Q: q, Score: 1, Prob: 1 / float64(len(space))}
	}
	return out
}

// Fig35Result carries the per-query interaction costs of Figure 3.5 for
// the three probability estimates.
type Fig35Result struct {
	Table    *Table
	Baseline []float64
	ATF      []float64 // ATF + equal template priors
	ATFLog   []float64 // ATF + query-log template priors
}

// Fig3_5 measures the interaction cost of query construction under the
// three probability estimates of Section 3.8.2 on the environment's
// workload. logSkew sets the template-log skew (0.85 for Lyrics-like
// logs, 0.2 for near-uniform IMDB-like logs).
func Fig3_5(env *Env, intents []datagen.Intent, logSkew float64, seed int64) (*Fig35Result, error) {
	res := &Fig35Result{Table: &Table{
		Title:   fmt.Sprintf("Figure 3.5 (%s): interaction cost per probability estimate", env.Name),
		Headers: []string{"query", "baseline", "ATF,Tequal", "ATF,TLog"},
	}}
	logCat := *env.Cat
	logCat.UsageCount = datagen.TemplateLog(len(env.Cat.Templates), 1000, logSkew, seed)

	scorers := []core.Scorer{
		&UniformScorer{Cat: env.Cat},
		env.Model(prob.Config{}),
		prob.New(env.IX, &logCat, prob.Config{UseTemplateLog: true}),
	}
	sinks := []*[]float64{&res.Baseline, &res.ATF, &res.ATFLog}

	for qi, in := range intents {
		c := env.Candidates(in.Keywords)
		space := env.Space(c, 0)
		intended, ok := env.ResolveIntent(in, space)
		if !ok {
			continue
		}
		row := []interface{}{fmt.Sprintf("q%02d", qi)}
		usable := true
		var costs []int
		for _, scorer := range scorers {
			sess, err := core.NewSession(scorer, c, core.SessionConfig{StopAtRemaining: 5})
			if err != nil {
				usable = false
				break
			}
			run, err := core.RunConstruction(sess, core.NewSimulatedUser(intended))
			if err != nil {
				usable = false
				break
			}
			costs = append(costs, run.Steps)
		}
		if !usable {
			continue
		}
		for i, c := range costs {
			*sinks[i] = append(*sinks[i], float64(c))
			row = append(row, c)
		}
		res.Table.AddRow(row...)
	}
	res.Table.Notes = append(res.Table.Notes,
		fmt.Sprintf("means: baseline=%.2f ATF=%.2f ATF+log=%.2f over %d queries",
			metrics.Mean(res.Baseline), metrics.Mean(res.ATF), metrics.Mean(res.ATFLog),
			len(res.Baseline)))
	return res, nil
}

// Fig36Result carries the interaction-cost samples of Figure 3.6.
type Fig36Result struct {
	Table        *Table
	RankSQAK     []float64
	RankIQP      []float64
	Construction []float64
}

// Fig3_6 compares the interaction cost of query ranking (SQAK and IQP
// ranking functions: the rank of the intended interpretation) against
// incremental construction (number of options evaluated), reporting the
// boxplot statistics of Figure 3.6.
func Fig3_6(env *Env, intents []datagen.Intent) (*Fig36Result, error) {
	res := &Fig36Result{Table: &Table{
		Title:   fmt.Sprintf("Figure 3.6 (%s): construction vs ranking (boxplot stats)", env.Name),
		Headers: []string{"series", "min", "q1", "median", "q3", "max", "mean", "n"},
	}}
	model := env.Model(prob.Config{})
	sqak := ranking.NewSQAK(env.IX)
	for _, in := range intents {
		c := env.Candidates(in.Keywords)
		space := env.Space(c, 0)
		intended, ok := env.ResolveIntent(in, space)
		if !ok {
			continue
		}
		iqpRank := ranking.ProbRankOf(model.Rank(space), intended.Key())
		sqakRank := ranking.RankOf(sqak.Rank(space), intended.Key())
		if iqpRank == 0 || sqakRank == 0 {
			continue
		}
		sess, err := core.NewSession(model, c, core.SessionConfig{StopAtRemaining: 5})
		if err != nil {
			continue
		}
		run, err := core.RunConstruction(sess, core.NewSimulatedUser(intended))
		if err != nil {
			continue
		}
		res.RankSQAK = append(res.RankSQAK, float64(sqakRank))
		res.RankIQP = append(res.RankIQP, float64(iqpRank))
		// Construction cost = options evaluated + the final scan of the
		// remaining query window.
		res.Construction = append(res.Construction, float64(run.Steps+run.RemainingRank))
	}
	for _, s := range []struct {
		name   string
		sample []float64
	}{
		{"Rank (SQAK)", res.RankSQAK},
		{"Rank (IQP)", res.RankIQP},
		{"Construction (IQP)", res.Construction},
	} {
		b := metrics.Summarize(s.sample)
		res.Table.AddRow(s.name, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean, b.N)
	}
	return res, nil
}

// Fig37Row is one complexity category of the user-study simulation.
type Fig37Row struct {
	Category         int
	RankMedian       float64
	ConstructSeconds float64
	RankSeconds      float64
}

// Fig3_7 reproduces the user study of Section 3.8.4 with the simulated
// user's time model: tasks are grouped into complexity categories by the
// rank of the intended interpretation (category k ≈ page k of 20 results)
// and the median task completion time is reported per interface.
func Fig3_7(env *Env, intents []datagen.Intent) ([]Fig37Row, *Table, error) {
	model := env.Model(prob.Config{})
	type sample struct {
		rank      int
		construct float64
	}
	byCat := map[int][]sample{}
	for _, in := range intents {
		c := env.Candidates(in.Keywords)
		space := env.Space(c, 0)
		intended, ok := env.ResolveIntent(in, space)
		if !ok {
			continue
		}
		rank := ranking.ProbRankOf(model.Rank(space), intended.Key())
		if rank == 0 {
			continue
		}
		sess, err := core.NewSession(model, c, core.SessionConfig{StopAtRemaining: 5})
		if err != nil {
			continue
		}
		run, err := core.RunConstruction(sess, core.NewSimulatedUser(intended))
		if err != nil {
			continue
		}
		u := core.NewSimulatedUser(intended)
		cat := (rank - 1) / 20
		byCat[cat] = append(byCat[cat], sample{
			rank:      rank,
			construct: u.ConstructionTime(run.Steps, run.RemainingRank).Seconds(),
		})
	}
	table := &Table{
		Title:   fmt.Sprintf("Figure 3.7 (%s): median task time by complexity category", env.Name),
		Headers: []string{"category", "tasks", "median rank", "ranking (s)", "construction (s)"},
	}
	var rows []Fig37Row
	u := core.NewSimulatedUser(nil)
	maxCat := 0
	for k := range byCat {
		if k > maxCat {
			maxCat = k
		}
	}
	for cat := 0; cat <= maxCat; cat++ {
		ss := byCat[cat]
		if len(ss) == 0 {
			continue
		}
		var ranks, cons []float64
		for _, s := range ss {
			ranks = append(ranks, float64(s.rank))
			cons = append(cons, s.construct)
		}
		row := Fig37Row{
			Category:         cat,
			RankMedian:       metrics.Median(ranks),
			ConstructSeconds: metrics.Median(cons),
			RankSeconds:      u.RankingTime(int(metrics.Median(ranks))).Seconds(),
		}
		rows = append(rows, row)
		table.AddRow(cat, len(ss), row.RankMedian, row.RankSeconds, row.ConstructSeconds)
	}
	return rows, table, nil
}

// Table32Row is one configuration of the greedy-vs-database-size sweep.
type Table32Row struct {
	Tables          int
	Interpretations float64
	// Steps[t] and TimePerStep[t] are indexed by threshold.
	Steps       map[int]float64
	TimePerStep map[int]time.Duration
}

// Table3_2 runs the Section 3.8.5 simulation across database sizes for
// the greedy thresholds 10/20/30 (Table 3.2).
func Table3_2(sizes []int, thresholds []int, keywords, reps int, seed int64) ([]Table32Row, *Table, error) {
	table := &Table{
		Title:   "Table 3.2: greedy algorithm vs database size",
		Headers: []string{"tables", "#queries"},
	}
	for _, th := range thresholds {
		table.Headers = append(table.Headers,
			fmt.Sprintf("steps(T=%d)", th), fmt.Sprintf("time/step(T=%d)", th))
	}
	var rows []Table32Row
	for _, n := range sizes {
		row := Table32Row{Tables: n, Steps: map[int]float64{}, TimePerStep: map[int]time.Duration{}}
		for _, th := range thresholds {
			var interp, steps float64
			var t time.Duration
			ok := 0
			for r := 0; r < reps; r++ {
				res, err := core.RunSimulation(core.SimConfig{
					Tables: n, Keywords: keywords, Threshold: th,
					Seed: seed + int64(r) + int64(n*1000),
				})
				if err != nil {
					continue
				}
				ok++
				interp += float64(res.Interpretations)
				steps += float64(res.Steps)
				t += res.TimePerStep
			}
			if ok == 0 {
				return nil, nil, fmt.Errorf("expt: all simulation runs failed for n=%d T=%d", n, th)
			}
			row.Interpretations = interp / float64(ok)
			row.Steps[th] = steps / float64(ok)
			row.TimePerStep[th] = t / time.Duration(ok)
		}
		rows = append(rows, row)
		cells := []interface{}{n, fmt.Sprintf("%.0f", row.Interpretations)}
		for _, th := range thresholds {
			cells = append(cells, fmt.Sprintf("%.1f", row.Steps[th]),
				row.TimePerStep[th].Round(time.Microsecond).String())
		}
		table.AddRow(cells...)
	}
	return rows, table, nil
}

// Table3_3 runs the simulation across keyword-query lengths (Table 3.3).
func Table3_3(keywordCounts []int, thresholds []int, tables, reps int, seed int64) ([]Table32Row, *Table, error) {
	table := &Table{
		Title:   "Table 3.3: greedy algorithm vs number of keywords",
		Headers: []string{"keywords", "#queries"},
	}
	for _, th := range thresholds {
		table.Headers = append(table.Headers,
			fmt.Sprintf("steps(T=%d)", th), fmt.Sprintf("time/step(T=%d)", th))
	}
	var rows []Table32Row
	for _, k := range keywordCounts {
		row := Table32Row{Tables: k, Steps: map[int]float64{}, TimePerStep: map[int]time.Duration{}}
		for _, th := range thresholds {
			var interp, steps float64
			var t time.Duration
			ok := 0
			for r := 0; r < reps; r++ {
				res, err := core.RunSimulation(core.SimConfig{
					Tables: tables, Keywords: k, Threshold: th,
					Seed: seed + int64(r) + int64(k*1000),
				})
				if err != nil {
					continue
				}
				ok++
				interp += float64(res.Interpretations)
				steps += float64(res.Steps)
				t += res.TimePerStep
			}
			if ok == 0 {
				return nil, nil, fmt.Errorf("expt: all simulation runs failed for k=%d T=%d", k, th)
			}
			row.Interpretations = interp / float64(ok)
			row.Steps[th] = steps / float64(ok)
			row.TimePerStep[th] = t / time.Duration(ok)
		}
		rows = append(rows, row)
		cells := []interface{}{k, fmt.Sprintf("%.0f", row.Interpretations)}
		for _, th := range thresholds {
			cells = append(cells, fmt.Sprintf("%.1f", row.Steps[th]),
				row.TimePerStep[th].Round(time.Microsecond).String())
		}
		table.AddRow(cells...)
	}
	return rows, table, nil
}

// Table34Row compares brute-force and greedy plan costs.
type Table34Row struct {
	Items, Options        int
	BruteCost, GreedyCost float64
	RelativeDifferencePct float64
}

// Table3_4 reproduces the plan-quality comparison of Table 3.4: random
// abstract spaces where each option subsumes half the interpretations.
func Table3_4(configs [][2]int, reps int, seed int64) ([]Table34Row, *Table, error) {
	rng := rand.New(rand.NewSource(seed))
	table := &Table{
		Title:   "Table 3.4: result quality of the two algorithms",
		Headers: []string{"#queries", "#options", "brute force cost", "greedy cost", "diff %"},
	}
	var rows []Table34Row
	for _, cfg := range configs {
		items, options := cfg[0], cfg[1]
		var bSum, gSum float64
		for r := 0; r < reps; r++ {
			space := randomPlanSpace(rng, items, options)
			bp, err := core.OptimalPlan(space)
			if err != nil {
				return nil, nil, err
			}
			gp, err := core.GreedyPlan(space)
			if err != nil {
				return nil, nil, err
			}
			bSum += bp.Cost
			gSum += gp.Cost
		}
		row := Table34Row{
			Items: items, Options: options,
			BruteCost: bSum / float64(reps), GreedyCost: gSum / float64(reps),
		}
		if row.BruteCost > 0 {
			row.RelativeDifferencePct = 100 * (row.GreedyCost - row.BruteCost) / row.BruteCost
		}
		rows = append(rows, row)
		table.AddRow(items, options, row.BruteCost, row.GreedyCost,
			fmt.Sprintf("%.2f%%", row.RelativeDifferencePct))
	}
	return rows, table, nil
}

// randomPlanSpace builds the Table 3.4 configuration: each option
// subsumes a random half of the interpretations; probabilities random.
func randomPlanSpace(rng *rand.Rand, items, options int) *core.PlanSpace {
	s := &core.PlanSpace{}
	total := 0.0
	probs := make([]float64, items)
	for i := range probs {
		probs[i] = rng.Float64() + 1e-6
		total += probs[i]
	}
	for i := 0; i < items; i++ {
		s.Items = append(s.Items, core.PlanItem{Key: fmt.Sprintf("q%d", i), Prob: probs[i] / total})
	}
	for o := 0; o < options; o++ {
		perm := rng.Perm(items)
		var mask uint64
		for _, i := range perm[:items/2] {
			mask |= 1 << uint(i)
		}
		s.Options = append(s.Options, core.PlanOption{Key: fmt.Sprintf("o%d", o), Subsumes: mask})
	}
	return s
}

// Table31Row is one example task of the user study (Table 3.1): the rank
// of the intended interpretation under IQP ranking (C1), the approximate
// number of construction options to evaluate (C2), and the size of the
// interpretation space |I|.
type Table31Row struct {
	Query     string
	C1        int
	C2        int
	SpaceSize int
}

// Table3_1 builds the example-task table over the workload: the tasks
// with the highest intended-interpretation ranks, i.e. where ranking
// alone fails and construction is needed.
func Table3_1(env *Env, intents []datagen.Intent, tasks int) ([]Table31Row, *Table, error) {
	model := env.Model(prob.Config{})
	var rows []Table31Row
	for _, in := range intents {
		c := env.Candidates(in.Keywords)
		space := env.Space(c, 0)
		intended, ok := env.ResolveIntent(in, space)
		if !ok {
			continue
		}
		rank := ranking.ProbRankOf(model.Rank(space), intended.Key())
		if rank == 0 {
			continue
		}
		sess, err := core.NewSession(model, c, core.SessionConfig{StopAtRemaining: 5})
		if err != nil {
			continue
		}
		run, err := core.RunConstruction(sess, core.NewSimulatedUser(intended))
		if err != nil {
			continue
		}
		rows = append(rows, Table31Row{
			Query:     fmt.Sprintf("%v", in.Keywords),
			C1:        rank,
			C2:        run.Steps,
			SpaceSize: len(space),
		})
	}
	// Keep the hardest tasks: highest ranks first.
	sort.Slice(rows, func(i, j int) bool { return rows[i].C1 > rows[j].C1 })
	if len(rows) > tasks {
		rows = rows[:tasks]
	}
	table := &Table{
		Title:   fmt.Sprintf("Table 3.1 (%s): example tasks for the user study", env.Name),
		Headers: []string{"task", "C1 (rank)", "C2 (options)", "|I|"},
	}
	for _, r := range rows {
		table.AddRow(r.Query, r.C1, r.C2, r.SpaceSize)
	}
	table.Notes = append(table.Notes,
		"C1: rank of the intended interpretation under IQP ranking; "+
			"C2: construction options evaluated; |I|: interpretation-space size")
	return rows, table, nil
}
