package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/admission"
)

// AdaptiveConfig tunes the self-sizing admission governor
// (WithAdaptiveAdmission): an AIMD controller discovers the
// concurrency knee online — additively raising the limit while
// windowed p99 stays healthy, multiplicatively backing off when it
// degrades — and a cost-banded queue sheds the estimated-heaviest
// waiters first under pressure, so a heavy-tail multi-join cannot
// occupy every slot a hundred sub-millisecond lookups wanted.
//
// MaxConcurrent <= 0 leaves the governor disabled: the server behaves
// exactly like the PR 6 static gate (WithAdmission), byte for byte.
type AdaptiveConfig struct {
	// MinConcurrent is the concurrency floor the controller never
	// backs off below (default 2).
	MinConcurrent int
	// MaxConcurrent is the concurrency ceiling — the only required
	// field; <= 0 disables the governor entirely.
	MaxConcurrent int
	// InitialConcurrent is the starting limit (default MinConcurrent:
	// start conservative, probe upward).
	InitialConcurrent int
	// MaxQueue caps the total number of queued waiters across all
	// cost bands (< 0 = 0: shed as soon as the limit is reached; with
	// no queue, cost-aware shedding is inert).
	MaxQueue int
	// QueueTimeout bounds how long a request may queue before being
	// shed with 503 (<= 0 selects the default 1s).
	QueueTimeout time.Duration
	// Window is the control-loop aggregation interval (<= 0 selects
	// the default 500ms).
	Window time.Duration
	// Increase, Backoff, Degrade, MinWindowSamples tune the AIMD loop
	// (zero values select the admission.Config defaults: +1, x0.75,
	// 30% latency gradient, 8 samples).
	Increase         int
	Backoff          float64
	Degrade          float64
	MinWindowSamples int
	// CostBands are the ascending exclusive upper bounds of the cheap
	// cost bands (see admission.GateConfig.BandBounds). Empty derives
	// bands from the engine's own data: the p50 and p90 of
	// EstimateCost over sampled corpus queries.
	CostBands []int64
	// MaxRetryAfter caps the drain-rate-scaled Retry-After hint on
	// shed responses (<= 0 selects the default 30s).
	MaxRetryAfter time.Duration
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.MinConcurrent <= 0 {
		c.MinConcurrent = 2
	}
	if c.MaxConcurrent < c.MinConcurrent {
		c.MaxConcurrent = c.MinConcurrent
	}
	if c.InitialConcurrent <= 0 {
		c.InitialConcurrent = c.MinConcurrent
	}
	if c.InitialConcurrent > c.MaxConcurrent {
		c.InitialConcurrent = c.MaxConcurrent
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = time.Second
	}
	if c.Window <= 0 {
		c.Window = 500 * time.Millisecond
	}
	if c.MaxRetryAfter <= 0 {
		c.MaxRetryAfter = 30 * time.Second
	}
	return c
}

// WithAdaptiveAdmission enables the self-sizing admission governor on
// the /v1/ endpoints. It supersedes WithAdmission when both are given.
// A config with MaxConcurrent <= 0 is a no-op, so callers can thread
// one AdaptiveConfig through unconditionally and flip it with a flag.
func WithAdaptiveAdmission(cfg AdaptiveConfig) Option {
	return func(s *Server) {
		if cfg.MaxConcurrent > 0 {
			s.adaptive = cfg
			s.adaptiveOn = true
		}
	}
}

// initAdaptive builds the governor stack once all options (notably
// WithClock) have been applied; called from New.
func (s *Server) initAdaptive() {
	cfg := s.adaptive.withDefaults()
	if len(cfg.CostBands) == 0 {
		cfg.CostBands = s.defaultCostBands()
	}
	s.adaptive = cfg
	ctrl := admission.NewController(admission.Config{
		MinLimit:     cfg.MinConcurrent,
		MaxLimit:     cfg.MaxConcurrent,
		InitialLimit: cfg.InitialConcurrent,
		Increase:     cfg.Increase,
		Backoff:      cfg.Backoff,
		Degrade:      cfg.Degrade,
		MinSamples:   cfg.MinWindowSamples,
	})
	s.agate = admission.NewGate(admission.GateConfig{
		Limit:        ctrl.Limit(),
		MaxQueue:     cfg.MaxQueue,
		QueueTimeout: cfg.QueueTimeout,
		BandBounds:   cfg.CostBands,
		Stats:        s.stats,
	})
	s.agov = admission.NewGovernor(ctrl, s.agate, cfg.Window, s.now)
}

// defaultCostBands derives the cost-band bounds from the engine's own
// corpus: the p50 and p90 of EstimateCost over sampled queries, so
// "cheap" and "heavy" mean what they mean for this dataset. Falls back
// to fixed bounds on corpora too small to sample.
func (s *Server) defaultCostBands() []int64 {
	queries := s.eng.SampleQueries(64)
	costs := make([]int64, 0, len(queries))
	for _, q := range queries {
		costs = append(costs, s.eng.EstimateCost(q))
	}
	if len(costs) < 4 {
		return []int64{16, 256}
	}
	sort.Slice(costs, func(i, j int) bool { return costs[i] < costs[j] })
	p50 := costs[len(costs)/2]
	p90 := costs[len(costs)*9/10]
	if p50 < 2 {
		p50 = 2
	}
	if p90 <= p50 {
		p90 = p50 + 1
	}
	return []int64{p50, p90}
}

// costPeekLimit bounds how much of a request body the cost estimator
// will buffer while sniffing the keyword query.
const costPeekLimit = 1 << 20

// estimateCost peeks at the JSON body for the keyword query (top-level
// "query" for search/diversify/rows, "start.query" for construction)
// and prices it against the inverted index. The body is restored for
// the handler. Requests without a recognisable query — mutations,
// mid-dialogue construction steps, malformed bodies — cost one unit:
// they are either cheap or fail fast in validation.
func (s *Server) estimateCost(r *http.Request) int64 {
	if r.Body == nil || r.Body == http.NoBody {
		return 1
	}
	peek, err := io.ReadAll(io.LimitReader(r.Body, costPeekLimit))
	rest := r.Body
	r.Body = struct {
		io.Reader
		io.Closer
	}{io.MultiReader(bytes.NewReader(peek), rest), rest}
	if err != nil {
		return 1
	}
	var probe struct {
		Query string `json:"query"`
		Start *struct {
			Query string `json:"query"`
		} `json:"start"`
	}
	if json.Unmarshal(peek, &probe) != nil {
		return 1
	}
	q := probe.Query
	if q == "" && probe.Start != nil {
		q = probe.Start.Query
	}
	if q == "" {
		return 1
	}
	return s.eng.EstimateCost(q)
}

// serveAdaptive is the governor's serving path: cost-banded admission,
// in-flight accounting, the default deadline, and the completion
// observation that drives the control loop.
func (s *Server) serveAdaptive(w http.ResponseWriter, r *http.Request) {
	ob, r := s.beginObserve(w, r)
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	cost := s.estimateCost(r)
	ob.setCost(cost)
	waitStart := time.Now()
	release, outcome := s.agate.Acquire(r.Context(), cost)
	switch outcome {
	case admission.Admitted:
	case admission.RejectedQueueFull:
		s.stats.ShedQueueFull()
		s.writeAdaptiveShed(rec, http.StatusTooManyRequests, "queue_full",
			"server is at capacity and its wait queue is full")
		ob.finish(rec.status)
		return
	case admission.Evicted:
		s.stats.ShedQueueFull()
		s.writeAdaptiveShed(rec, http.StatusTooManyRequests, "queue_evicted",
			"server is under queue pressure and this request's estimated cost lost its place to cheaper work")
		ob.finish(rec.status)
		return
	case admission.TimedOut:
		s.stats.ShedQueueTimeout()
		s.writeAdaptiveShed(rec, http.StatusServiceUnavailable, "queue_timeout",
			"server is overloaded; request timed out waiting for an execution slot")
		ob.finish(rec.status)
		return
	default: // admission.Canceled
		writeError(rec, 499, r.Context().Err())
		ob.finish(rec.status)
		return
	}
	ob.admissionWait(time.Since(waitStart))
	defer release()
	s.stats.StartRequest()
	defer s.stats.EndRequest()
	start := s.now()
	if s.reqTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.handler.ServeHTTP(rec, r)
	if rec.status == http.StatusGatewayTimeout {
		s.stats.DeadlineExceeded()
	}
	s.agov.ObserveCompletion(s.now().Sub(start))
	ob.finish(rec.status)
}

// writeAdaptiveShed writes one governor shed response: Retry-After
// scaled to the observed queue drain rate (backlog / (limit slots ×
// average service time)) instead of a constant, plus the current limit
// and its remaining headroom to the ceiling so clients can see whether
// the server still has room to grow or is pinned at capacity.
func (s *Server) writeAdaptiveShed(w http.ResponseWriter, status int, code, msg string) {
	st := s.agate.Stats()
	retry := admission.RetryAfter(st.Queued, st.Limit, s.agov.AvgService(),
		time.Second, s.adaptive.MaxRetryAfter)
	secs := int64((retry + time.Second - 1) / time.Second)
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	headroom := s.adaptive.MaxConcurrent - st.Limit
	writeJSON(w, status, ErrorResponse{
		Error:             msg,
		Code:              code,
		RetryAfterSeconds: secs,
		Limit:             st.Limit,
		LimitHeadroom:     &headroom,
	})
}

// AdaptiveHealth is the /healthz view of the governor: the controller
// state (current limit, bounds, reference p99, decision counters), the
// gate occupancy, and the per-cost-band admission counters. Present
// only when WithAdaptiveAdmission is enabled.
type AdaptiveHealth struct {
	Enabled bool `json:"enabled"`
	admission.ControllerState
	InFlight     int                   `json:"in_flight"`
	Queued       int                   `json:"queued"`
	AvgServiceMS float64               `json:"avg_service_ms"`
	Bands        []admission.BandStats `json:"bands"`
}

// adaptiveHealth snapshots the governor for /healthz; nil when the
// governor is disabled so the static health shape is untouched.
func (s *Server) adaptiveHealth() *AdaptiveHealth {
	if s.agov == nil {
		return nil
	}
	gs := s.agate.Stats()
	return &AdaptiveHealth{
		Enabled:         true,
		ControllerState: s.agov.State(),
		InFlight:        gs.InFlight,
		Queued:          gs.Queued,
		AvgServiceMS:    float64(s.agov.AvgService()) / 1e6,
		Bands:           gs.Bands,
	}
}
