package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	keysearch "repro"
	"repro/httpapi"
)

// testEnv builds one small engine + workload, shared across tests
// (building even a small dataset engine is the slow part).
type testEnv struct {
	eng  *keysearch.Engine
	ops  []Op
	once sync.Once
	err  error
}

var env testEnv

func (e *testEnv) get(t *testing.T) (*keysearch.Engine, []Op) {
	t.Helper()
	e.once.Do(func() {
		cfg := DatasetConfig{Kind: KindMovies, TargetRows: 4000, Seed: 42}
		db, err := BuildDataset(cfg)
		if err != nil {
			e.err = err
			return
		}
		e.eng, e.err = BuildEngine(cfg)
		if e.err != nil {
			return
		}
		e.ops, e.err = BuildWorkload(db, cfg.Kind, WorkloadConfig{Ops: 128, Seed: 7})
	})
	if e.err != nil {
		t.Fatal(e.err)
	}
	return e.eng, e.ops
}

func TestWorkloadDeterminism(t *testing.T) {
	cfg := DatasetConfig{Kind: KindMovies, TargetRows: 2000, Seed: 11}
	db1, err := BuildDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := BuildDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := WorkloadConfig{Ops: 200, Seed: 3}
	ops1, err := BuildWorkload(db1, cfg.Kind, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	ops2, err := BuildWorkload(db2, cfg.Kind, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops1) != len(ops2) || len(ops1) != 200 {
		t.Fatalf("op counts: %d vs %d", len(ops1), len(ops2))
	}
	kinds := map[OpKind]int{}
	for i := range ops1 {
		if ops1[i].Kind != ops2[i].Kind || !bytes.Equal(ops1[i].Body, ops2[i].Body) {
			t.Fatalf("op %d diverged: %s %q vs %s %q",
				i, ops1[i].Kind, ops1[i].Body, ops2[i].Kind, ops2[i].Body)
		}
		kinds[ops1[i].Kind]++
	}
	// The default mix must actually produce every class.
	for _, k := range []OpKind{OpSearch, OpRows, OpDiversify, OpConstruct, OpMutate} {
		if kinds[k] == 0 {
			t.Fatalf("mix produced no %s ops: %v", k, kinds)
		}
	}
}

func TestMutateBodiesUnique(t *testing.T) {
	tpl, err := json.Marshal(mutateTemplate(KindMovies, 1))
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := mutateBody(tpl, 1), mutateBody(tpl, 2)
	if bytes.Equal(b1, b2) {
		t.Fatalf("sequence not substituted: %s", b1)
	}
	var req httpapi.MutateRequest
	if err := json.Unmarshal(b1, &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Mutations) == 0 || req.Mutations[0].Values[0] != "lg-1" {
		t.Fatalf("bad instantiated batch: %+v", req)
	}
}

func TestClosedLoopRun(t *testing.T) {
	eng, ops := env.get(t)
	ts := httptest.NewServer(httpapi.New(eng))
	defer ts.Close()

	res, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		Ops:      ops,
		Workers:  4,
		Duration: 700 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "closed" || res.Requests == 0 {
		t.Fatalf("res = %v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("ungated run produced %d errors: %v", res.Errors, res)
	}
	if res.Goodput != res.Requests {
		t.Fatalf("goodput %d != requests %d on an ungated run", res.Goodput, res.Requests)
	}
	if len(res.PerKind) == 0 || res.P50MS <= 0 {
		t.Fatalf("missing aggregates: %v", res)
	}
	var sum int64
	for _, ks := range res.PerKind {
		sum += ks.Requests
	}
	if sum != res.Requests {
		t.Fatalf("per-kind requests %d != total %d", sum, res.Requests)
	}
	// The run mixed mutations in; the engine must have advanced its
	// epoch and still answer searches.
	if eng.Epoch() == 0 {
		t.Fatal("mutate ops did not commit any batch")
	}
}

func TestOpenLoopRun(t *testing.T) {
	eng, ops := env.get(t)
	ts := httptest.NewServer(httpapi.New(eng))
	defer ts.Close()

	res, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		Ops:      ops,
		Workers:  16,
		RateRPS:  150,
		Duration: 700 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "open" || res.TargetRPS != 150 {
		t.Fatalf("res = %v", res)
	}
	// ~105 arrivals scheduled in 0.7s; allow wide slack for slow CI.
	if res.Requests < 20 {
		t.Fatalf("only %d requests issued at 150/s over 700ms", res.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("ungated open-loop run produced %d errors", res.Errors)
	}
}

// TestOpenLoopMeasuresFromSchedule pins the coordinated-omission
// property: with a server that stalls far longer than the arrival
// interval, *every* scheduled arrival during the stall must record the
// queueing delay it experienced — so the median reflects the stall even
// though only a few requests were physically in flight.
func TestOpenLoopMeasuresFromSchedule(t *testing.T) {
	stall := 250 * time.Millisecond
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(stall)
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	ops := []Op{{Kind: OpSearch, Query: "x", Body: []byte(`{"query":"x"}`)}}
	res, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		Ops:      ops,
		Workers:  2, // tiny cap: arrivals pile up waiting for a slot
		RateRPS:  100,
		Duration: 900 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests < 4 {
		t.Fatalf("too few requests completed: %d", res.Requests)
	}
	// A coordinated (naive) client would report ~stall for every
	// request; the schedule-anchored measurement must blow well past it
	// for the later arrivals.
	if res.MaxMS < 1.5*float64(stall.Milliseconds()) {
		t.Fatalf("max %.0fms does not reflect schedule delay (stall %v)", res.MaxMS, stall)
	}
}

// TestOverloadBoundedTailWithShedding is the acceptance test of the
// tentpole: a saturating closed-loop run against a concurrency-limited
// server must be answered with shedding, a wait queue that never grows
// past its bound, and a bounded tail latency for everything the server
// actually accepted — the "no unbounded queue growth" criterion.
func TestOverloadBoundedTailWithShedding(t *testing.T) {
	eng, ops := env.get(t)
	const (
		maxConcurrent = 2
		maxQueue      = 4
		queueTimeout  = 100 * time.Millisecond
		reqTimeout    = 500 * time.Millisecond
		handlerDelay  = 20 * time.Millisecond
	)
	srv := httpapi.New(eng,
		httpapi.WithAdmission(httpapi.AdmissionConfig{
			MaxConcurrent: maxConcurrent,
			MaxQueue:      maxQueue,
			QueueTimeout:  queueTimeout,
		}),
		httpapi.WithRequestTimeout(reqTimeout),
		// Small-dataset handlers answer in microseconds; stand in the
		// engine cost a million-row dataset exhibits so the gate
		// genuinely saturates.
		httpapi.WithHandlerWrapper(func(inner http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				select {
				case <-time.After(handlerDelay):
				case <-r.Context().Done():
					w.WriteHeader(http.StatusGatewayTimeout)
					return
				}
				inner.ServeHTTP(w, r)
			})
		}),
	)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Single-request ops only: construct dialogues span several HTTP
	// round trips, which would fold several queue waits into one
	// recorded latency and muddy the per-request tail bound.
	single := make([]Op, 0, len(ops))
	for _, op := range ops {
		if op.Kind != OpConstruct {
			single = append(single, op)
		}
	}

	res, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		Ops:      single,
		Workers:  16, // 16 ≫ 2+4: guaranteed oversubscription
		Duration: 1200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed429+res.Shed503 == 0 {
		t.Fatalf("oversubscribed run shed nothing: %v", res)
	}
	if res.Goodput == 0 {
		t.Fatalf("server served nothing under overload: %v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("overload produced real errors, not sheds: %v", res)
	}
	// Bounded tail: every accepted request waited ≤ queueTimeout and
	// executed ≤ reqTimeout; shed requests return almost immediately.
	// Generous slack covers client-side scheduling on loaded CI.
	bound := float64((queueTimeout + reqTimeout + 2*time.Second).Milliseconds())
	if res.P99MS > bound || res.MaxMS > bound {
		t.Fatalf("tail not bounded: p99 %.0fms max %.0fms bound %.0fms", res.P99MS, res.MaxMS, bound)
	}

	// The server-side view must agree: queue never past its bound.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h httpapi.HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Admission.MaxQueued > maxQueue {
		t.Fatalf("queue grew past its bound: %+v", h.Admission)
	}
	if h.Admission.MaxInFlight > maxConcurrent {
		t.Fatalf("concurrency exceeded its bound: %+v", h.Admission)
	}
	if h.Admission.ShedQueueFull+h.Admission.ShedQueueTimeout == 0 {
		t.Fatalf("server recorded no sheds: %+v", h.Admission)
	}
}

func TestFindSaturation(t *testing.T) {
	eng, ops := env.get(t)
	srv := httpapi.New(eng,
		// A fixed 4ms cost per request makes the saturation knee sharp
		// and machine-independent: ~250 rps per concurrency slot.
		httpapi.WithHandlerWrapper(func(inner http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				time.Sleep(4 * time.Millisecond)
				inner.ServeHTTP(w, r)
			})
		}),
	)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sat, err := FindSaturation(context.Background(), SaturationOptions{
		Base:         Options{BaseURL: ts.URL, Ops: ops},
		StartWorkers: 1,
		MaxWorkers:   8,
		StepDuration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sat.Steps) == 0 || sat.SaturationRPS <= 0 || sat.AtWorkers < 1 {
		t.Fatalf("sat = %+v", sat)
	}
	// More workers must have helped at least once over one worker.
	first := sat.Steps[0].GoodputRPS
	if sat.SaturationRPS < first {
		t.Fatalf("saturation %.0f below single-worker goodput %.0f", sat.SaturationRPS, first)
	}
}
