package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	keysearch "repro"
)

// durableTestServer builds a durable mutable engine in a temp dir and
// wraps it in the HTTP front-end.
func durableTestServer(t *testing.T) (*Server, *keysearch.Engine) {
	t.Helper()
	eng, err := keysearch.DemoMoviesWith(3,
		keysearch.WithMutations(),
		keysearch.WithDurability(t.TempDir()),
		keysearch.WithCheckpointPolicy(time.Hour, 1<<30),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return New(eng), eng
}

func TestCheckpointEndpoint(t *testing.T) {
	srv, eng := durableTestServer(t)

	// Commit one batch so the checkpoint has something to fold.
	mut := `{"mutations":[{"op":"insert","table":"actor","values":["ck-http","Checkpoint Person"]}]}`
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/mutate", strings.NewReader(mut)))
	if rec.Code != http.StatusOK {
		t.Fatalf("mutate: %d %s", rec.Code, rec.Body)
	}

	// Health before: durable, one pending WAL batch.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var health HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if !health.Durable || health.WALBatches != 1 || health.Epoch != 1 {
		t.Fatalf("healthz before checkpoint = %+v", health)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/checkpoint", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", rec.Code, rec.Body)
	}
	var stats keysearch.CheckpointStats
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != 1 || stats.WALBatchesDropped != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	// Health after: WAL drained, checkpoint epoch advanced.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.WALBatches != 0 || health.LastCheckpoint != 1 {
		t.Fatalf("healthz after checkpoint = %+v", health)
	}
	if eng.PendingWALBatches() != 0 {
		t.Fatalf("engine still reports %d pending batches", eng.PendingWALBatches())
	}
}

func TestCheckpointForbiddenWithoutDurability(t *testing.T) {
	eng, err := keysearch.DemoMoviesWith(3, keysearch.WithMutations())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/checkpoint", nil))
	if rec.Code != http.StatusForbidden {
		t.Fatalf("checkpoint on memory-only engine: %d, want 403", rec.Code)
	}
	// And the method gate holds.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/checkpoint", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/checkpoint: %d, want 405", rec.Code)
	}
	// Memory-only healthz reports durable=false and omits WAL fields.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var health HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Durable || health.WALBatches != 0 {
		t.Fatalf("memory-only healthz = %+v", health)
	}
}
