package shard

import "sync/atomic"

// Stats is the engine-lifetime counter block of a sharded coordinator:
// one scatter/merge tally plus per-shard execution and selection-cache
// counters, all lock-free and safe for concurrent request traffic.
type Stats struct {
	n             int
	scatters      atomic.Int64
	countScatters atomic.Int64
	merged        atomic.Int64
	shards        []ShardCounters
}

// ShardCounters tallies one shard's work.
type ShardCounters struct {
	execs       atomic.Int64
	results     atomic.Int64
	selHits     atomic.Int64
	selComputed atomic.Int64
}

// NewStats allocates counters for an n-shard coordinator.
func NewStats(n int) *Stats {
	if n < 1 {
		n = 1
	}
	return &Stats{n: n, shards: make([]ShardCounters, n)}
}

// N reports the shard count the stats were sized for.
func (s *Stats) N() int { return s.n }

// Snapshot is a point-in-time copy of Stats for /healthz.
type Snapshot struct {
	// Scatters counts plan executions fanned out across shards;
	// CountScatters the counting-only fan-outs (emptiness probes).
	Scatters      int64 `json:"scatters"`
	CountScatters int64 `json:"count_scatters"`
	// MergedResults is the total results the coordinator's rank-order
	// merge has emitted.
	MergedResults int64           `json:"merged_results"`
	Shards        []ShardSnapshot `json:"shards"`
}

// ShardSnapshot is one shard's slice of a Snapshot.
type ShardSnapshot struct {
	// Execs counts partitioned plan runs (execute + count) on this
	// shard; Results the joining trees it contributed before merge.
	Execs   int64 `json:"execs"`
	Results int64 `json:"results"`
	// SelectionHits / SelectionsComputed are this shard's traffic
	// against the request-wide shared selection store.
	SelectionHits      int64 `json:"selection_hits"`
	SelectionsComputed int64 `json:"selections_computed"`
}

// Snapshot copies the current counter values.
func (s *Stats) Snapshot() Snapshot {
	out := Snapshot{
		Scatters:      s.scatters.Load(),
		CountScatters: s.countScatters.Load(),
		MergedResults: s.merged.Load(),
		Shards:        make([]ShardSnapshot, len(s.shards)),
	}
	for i := range s.shards {
		sc := &s.shards[i]
		out.Shards[i] = ShardSnapshot{
			Execs:              sc.execs.Load(),
			Results:            sc.results.Load(),
			SelectionHits:      sc.selHits.Load(),
			SelectionsComputed: sc.selComputed.Load(),
		}
	}
	return out
}
