// Package benchpipe is the shared core of the interpretation-pipeline
// benchmark harness: it defines the benchmark grid (keyword count ×
// parallelism, plus score-cache ablation legs), builds the large seed
// dataset once per parallelism level, and measures one end-to-end
// pipeline operation — ranked interpretation search plus global top-k row
// retrieval, i.e. every parallel stage (sharded generation, concurrent
// scoring, fanned-out plan execution).
//
// Two front-ends consume it: BenchmarkPipelineSequentialVsParallel (go
// test -bench) for interactive comparison, and cmd/bench, which writes
// BENCH_pipeline.json so CI tracks the perf trajectory across PRs.
package benchpipe

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	keysearch "repro"
)

// Seed and Scale pin the large seed dataset: the demo movie generator at
// 2.5× the default row counts (≈1000 movies, 750 actors), deterministic
// for the seed.
const (
	Seed  = 21
	Scale = 2.5
)

// MaxKeywords is the largest keyword count in the grid.
const MaxKeywords = 3

// Case is one point of the benchmark grid.
type Case struct {
	// Keywords is the keyword count of the query (1..MaxKeywords).
	Keywords int
	// Parallelism is the engine's pipeline worker count (1 = sequential).
	Parallelism int
	// NoCache disables the memoised score cache (ablation legs).
	NoCache bool
}

// Name renders the sub-benchmark name, e.g. "kw=2/p=4" or
// "kw=3/p=4/nocache".
func (c Case) Name() string {
	n := fmt.Sprintf("kw=%d/p=%d", c.Keywords, c.Parallelism)
	if c.NoCache {
		n += "/nocache"
	}
	return n
}

// Cases returns the benchmark grid. quick trims it to the cheapest
// representative subset (used by -short CI legs).
func Cases(quick bool) []Case {
	if quick {
		return []Case{
			{Keywords: 2, Parallelism: 1},
			{Keywords: 2, Parallelism: 2},
			{Keywords: 2, Parallelism: 4},
		}
	}
	var out []Case
	for kw := 1; kw <= MaxKeywords; kw++ {
		for _, p := range []int{1, 2, 4, 8} {
			out = append(out, Case{Keywords: kw, Parallelism: p})
		}
	}
	// Score-cache ablation at the heaviest keyword count.
	out = append(out,
		Case{Keywords: MaxKeywords, Parallelism: 1, NoCache: true},
		Case{Keywords: MaxKeywords, Parallelism: 4, NoCache: true},
	)
	return out
}

// Env caches one engine per (parallelism, cache) configuration, all over
// identical data, plus the token pool queries are drawn from.
type Env struct {
	mu      sync.Mutex
	engines map[string]*keysearch.Engine
	tokens  []string
}

// NewEnv builds the environment lazily; engines are created on first use.
func NewEnv() *Env {
	return &Env{engines: make(map[string]*keysearch.Engine)}
}

// engine returns the cached engine for the case's configuration.
func (e *Env) engine(c Case) (*keysearch.Engine, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := fmt.Sprintf("p=%d/nocache=%v", c.Parallelism, c.NoCache)
	if eng, ok := e.engines[key]; ok {
		return eng, nil
	}
	eng, err := keysearch.DemoMoviesScaled(Seed, Scale,
		keysearch.WithParallelism(c.Parallelism),
		keysearch.WithScoreCache(!c.NoCache),
	)
	if err != nil {
		return nil, err
	}
	if e.tokens == nil {
		toks := eng.SampleQueries(MaxKeywords)
		if len(toks) < MaxKeywords {
			// Do not cache anything: every case must fail loudly rather
			// than let a later Query() index past the short token slice.
			return nil, fmt.Errorf("benchpipe: only %d sample tokens", len(toks))
		}
		e.tokens = toks
	}
	e.engines[key] = eng
	return eng, nil
}

// Query returns the deterministic kw-keyword query of the grid.
func (e *Env) Query(kw int) string {
	return strings.Join(e.tokens[:kw], " ")
}

// Op runs one benchmark operation: ranked interpretation search plus
// global top-k rows for the case's query.
func (e *Env) Op(ctx context.Context, eng *keysearch.Engine, query string) error {
	if _, err := eng.Search(ctx, keysearch.SearchRequest{Query: query, K: 10}); err != nil {
		return err
	}
	if _, err := eng.SearchRows(ctx, keysearch.RowsRequest{Query: query, K: 10}); err != nil {
		return err
	}
	return nil
}

// Run executes one case inside a testing benchmark body.
func (e *Env) Run(b *testing.B, c Case) {
	eng, err := e.engine(c)
	if err != nil {
		b.Fatal(err)
	}
	q := e.Query(c.Keywords)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Op(ctx, eng, q); err != nil {
			b.Fatal(err)
		}
	}
}

// Row is one measured grid point as persisted to BENCH_pipeline.json.
type Row struct {
	Name        string `json:"name"`
	Keywords    int    `json:"keywords"`
	Parallelism int    `json:"parallelism"`
	NoCache     bool   `json:"no_cache,omitempty"`
	Ops         int    `json:"ops"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	// SpeedupVsSequential is the p=1 (same keyword count, same cache
	// setting) ns/op divided by this row's ns/op; 0 when no baseline row
	// exists in the measured set.
	SpeedupVsSequential float64 `json:"speedup_vs_sequential,omitempty"`
}

// Measure runs every case through testing.Benchmark and derives speedups
// against the matching sequential baseline.
func Measure(cases []Case) ([]Row, error) {
	env := NewEnv()
	var firstErr error
	rows := make([]Row, 0, len(cases))
	for _, c := range cases {
		c := c
		r := testing.Benchmark(func(b *testing.B) {
			if firstErr != nil {
				b.Skip("earlier case failed")
			}
			eng, err := env.engine(c)
			if err != nil {
				firstErr = err
				b.Skip(err)
			}
			q := env.Query(c.Keywords)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.Op(ctx, eng, q); err != nil {
					firstErr = err
					b.Skip(err)
				}
			}
		})
		if firstErr != nil {
			return nil, firstErr
		}
		rows = append(rows, Row{
			Name:        c.Name(),
			Keywords:    c.Keywords,
			Parallelism: c.Parallelism,
			NoCache:     c.NoCache,
			Ops:         r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	base := make(map[string]int64)
	for _, r := range rows {
		if r.Parallelism == 1 {
			base[fmt.Sprintf("kw=%d/nocache=%v", r.Keywords, r.NoCache)] = r.NsPerOp
		}
	}
	for i := range rows {
		if b, ok := base[fmt.Sprintf("kw=%d/nocache=%v", rows[i].Keywords, rows[i].NoCache)]; ok && rows[i].NsPerOp > 0 {
			rows[i].SpeedupVsSequential = float64(b) / float64(rows[i].NsPerOp)
		}
	}
	return rows, nil
}
