package durable

import (
	"bytes"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the WAL scanner and enforces
// its recovery contract on every input:
//
//   - scanning never panics and never reads past the input,
//   - the valid prefix length is consistent: re-scanning exactly that
//     prefix yields the same records and consumes it fully,
//   - re-encoding the recovered records reproduces the valid prefix
//     byte-for-byte (the scan/append pair is lossless), and
//   - appending a fresh record after the valid prefix yields a log that
//     recovers every prior record plus the new one — the exact sequence
//     crash recovery performs (truncate torn tail, then keep logging).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, 1, []byte("batch-one")))
	f.Add(AppendRecord(AppendRecord(nil, 3, []byte("a")), 4, []byte("bb")))
	torn := AppendRecord(nil, 7, bytes.Repeat([]byte{0xEE}, 40))
	f.Add(torn[:len(torn)-5])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, raw []byte) {
		recs, valid := ScanWAL(raw)
		if valid < 0 || valid > len(raw) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(raw))
		}
		recs2, valid2 := ScanWAL(raw[:valid])
		if valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("re-scan of valid prefix: %d records / %d bytes, want %d / %d",
				len(recs2), valid2, len(recs), valid)
		}
		var rebuilt []byte
		for _, r := range recs {
			rebuilt = AppendRecord(rebuilt, r.Epoch, r.Body)
		}
		if !bytes.Equal(rebuilt, raw[:valid]) {
			t.Fatalf("re-encoded records do not reproduce the valid prefix")
		}
		appended := AppendRecord(append([]byte(nil), raw[:valid]...), 99, []byte("post-crash"))
		recs3, valid3 := ScanWAL(appended)
		if valid3 != len(appended) || len(recs3) != len(recs)+1 {
			t.Fatalf("append after recovery: %d records / %d of %d bytes valid",
				len(recs3), valid3, len(appended))
		}
		last := recs3[len(recs3)-1]
		if last.Epoch != 99 || string(last.Body) != "post-crash" {
			t.Fatalf("appended record corrupted: %+v", last)
		}
	})
}
