package ontology

import (
	"reflect"
	"testing"
)

// small builds: root → (person → (actor, director), work → (film)).
func small(t *testing.T) (*Ontology, map[string]int) {
	t.Helper()
	o := New("entity")
	ids := map[string]int{"entity": 0}
	add := func(name string, parent string) {
		id, err := o.AddClass(name, ids[parent])
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	add("person", "entity")
	add("work", "entity")
	add("actor", "person")
	add("director", "person")
	add("film", "work")
	return o, ids
}

func TestAddClassValidation(t *testing.T) {
	o := New("root")
	if _, err := o.AddClass("x", 99); err == nil {
		t.Fatal("bad parent accepted")
	}
	if _, err := o.AddClass("a", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddClass("a", 0); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestHierarchyNavigation(t *testing.T) {
	o, ids := small(t)
	if o.NumClasses() != 6 {
		t.Fatalf("NumClasses = %d", o.NumClasses())
	}
	if o.Root() != 0 {
		t.Fatal("root id")
	}
	c, ok := o.Class(ids["actor"])
	if !ok || c.Name != "actor" || c.Depth != 2 || c.Parent != ids["person"] {
		t.Fatalf("actor class = %+v", c)
	}
	if _, ok := o.Class(-1); ok {
		t.Fatal("negative id resolved")
	}
	if id, ok := o.ByName("film"); !ok || id != ids["film"] {
		t.Fatal("ByName failed")
	}
	if _, ok := o.ByName("ghost"); ok {
		t.Fatal("unknown name resolved")
	}
	kids := o.Children(ids["person"])
	if !reflect.DeepEqual(kids, []int{ids["actor"], ids["director"]}) {
		t.Fatalf("Children = %v", kids)
	}
	if !o.IsLeaf(ids["actor"]) || o.IsLeaf(ids["person"]) {
		t.Fatal("IsLeaf wrong")
	}
	leaves := o.Leaves()
	if len(leaves) != 3 {
		t.Fatalf("Leaves = %v", leaves)
	}
	anc := o.Ancestors(ids["actor"])
	if !reflect.DeepEqual(anc, []int{ids["person"], 0}) {
		t.Fatalf("Ancestors = %v", anc)
	}
	if len(o.Ancestors(0)) != 0 {
		t.Fatal("root has ancestors")
	}
	sub := o.Subtree(ids["person"])
	if !reflect.DeepEqual(sub, []int{ids["person"], ids["actor"], ids["director"]}) {
		t.Fatalf("Subtree = %v", sub)
	}
	if o.MaxDepth() != 2 {
		t.Fatalf("MaxDepth = %d", o.MaxDepth())
	}
	if got := o.CountByDepth(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("CountByDepth = %v", got)
	}
}

func TestInstances(t *testing.T) {
	o, ids := small(t)
	o.AddInstance(ids["actor"], "tom_hanks")
	o.AddInstance(ids["actor"], "tom_cruise")
	o.AddInstance(ids["actor"], "tom_hanks") // duplicate ignored
	o.AddInstance(ids["director"], "spielberg")
	o.AddInstance(ids["film"], "terminal")
	if o.DirectInstanceCount(ids["actor"]) != 2 {
		t.Fatalf("actor instances = %d", o.DirectInstanceCount(ids["actor"]))
	}
	got := o.DirectInstances(ids["actor"])
	if !reflect.DeepEqual(got, []string{"tom_cruise", "tom_hanks"}) {
		t.Fatalf("DirectInstances = %v", got)
	}
	below := o.InstancesBelow(ids["person"])
	if !reflect.DeepEqual(below, []string{"spielberg", "tom_cruise", "tom_hanks"}) {
		t.Fatalf("InstancesBelow = %v", below)
	}
	if o.TotalInstances() != 4 {
		t.Fatalf("TotalInstances = %d", o.TotalInstances())
	}
	// Shared instance between classes counted once globally.
	o.AddInstance(ids["film"], "tom_hanks")
	if o.TotalInstances() != 4 {
		t.Fatalf("shared instance double-counted: %d", o.TotalInstances())
	}
}

func TestTableMapping(t *testing.T) {
	o, ids := small(t)
	o.MapTable(ids["actor"], "imdb_actor")
	o.MapTable(ids["actor"], "tv_actor")
	o.MapTable(ids["film"], "imdb_film")
	if got := o.TablesAt(ids["actor"]); !reflect.DeepEqual(got, []string{"imdb_actor", "tv_actor"}) {
		t.Fatalf("TablesAt = %v", got)
	}
	below := o.TablesBelow(ids["person"])
	if len(below) != 2 {
		t.Fatalf("TablesBelow(person) = %v", below)
	}
	if o.ClassOfTable("imdb_film") != ids["film"] {
		t.Fatal("ClassOfTable wrong")
	}
	if o.ClassOfTable("ghost") != -1 {
		t.Fatal("unknown table should map to -1")
	}
	if len(o.TablesAt(ids["work"])) != 0 {
		t.Fatal("unmapped class should have no tables")
	}
}
