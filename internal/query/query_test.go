package query

import (
	"strings"
	"testing"

	"repro/internal/invindex"
	"repro/internal/relstore"
	"repro/internal/schemagraph"
)

// fixture builds the small movie database used throughout the thesis's
// examples, its index, schema graph and template catalogue.
type fixture struct {
	db  *relstore.Database
	ix  *invindex.Index
	g   *schemagraph.Graph
	cat *Catalog
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	db := relstore.NewDatabase("movies")
	must := func(s *relstore.TableSchema) *relstore.Table {
		tb, err := db.CreateTable(s)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	actor := must(&relstore.TableSchema{
		Name:       "actor",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	movie := must(&relstore.TableSchema{
		Name:       "movie",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "title", Indexed: true}, {Name: "year", Indexed: true}},
		PrimaryKey: "id",
	})
	acts := must(&relstore.TableSchema{
		Name:    "acts",
		Columns: []relstore.Column{{Name: "actor_id"}, {Name: "movie_id"}, {Name: "role", Indexed: true}},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
			{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
		},
	})
	ins := func(tb *relstore.Table, vals ...string) {
		t.Helper()
		if _, err := tb.Insert(vals...); err != nil {
			t.Fatal(err)
		}
	}
	ins(actor, "a1", "Tom Hanks")
	ins(actor, "a2", "Tom Cruise")
	ins(movie, "m1", "The Terminal", "2004")
	ins(movie, "m2", "Hanks of the River", "2001")
	ins(acts, "a1", "m1", "Viktor")
	ins(acts, "a2", "m1", "Officer Hanks")
	ix := invindex.Build(db)
	g := schemagraph.FromDatabase(db)
	cat := BuildCatalog(g, schemagraph.EnumerateOptions{MaxNodes: 3})
	return &fixture{db: db, ix: ix, g: g, cat: cat}
}

func TestGenerateCandidates(t *testing.T) {
	f := newFixture(t)
	c := GenerateCandidates(f.ix, []string{"Hanks", "2001"}, GenerateOptionsConfig{})
	if len(c.PerKeyword) != 2 {
		t.Fatalf("PerKeyword len = %d", len(c.PerKeyword))
	}
	// hanks occurs in actor.name, movie.title and acts.role.
	if got := len(c.PerKeyword[0]); got != 3 {
		t.Fatalf("hanks candidates = %d, want 3: %v", got, c.PerKeyword[0])
	}
	for _, ki := range c.PerKeyword[0] {
		if ki.Kind != KindValue || ki.Keyword != "hanks" || ki.Pos != 0 {
			t.Fatalf("bad candidate: %+v", ki)
		}
	}
	// 2001 occurs only in movie.year.
	if got := len(c.PerKeyword[1]); got != 1 {
		t.Fatalf("2001 candidates = %d, want 1", got)
	}
	if len(c.Unmatched) != 0 {
		t.Fatalf("Unmatched = %v", c.Unmatched)
	}
	if c.SpaceSize() != 3 {
		t.Fatalf("SpaceSize = %d, want 3", c.SpaceSize())
	}
}

func TestGenerateCandidatesSchemaTerms(t *testing.T) {
	f := newFixture(t)
	c := GenerateCandidates(f.ix, []string{"actor", "hanks"}, GenerateOptionsConfig{IncludeSchemaTerms: true})
	foundTable := false
	for _, ki := range c.PerKeyword[0] {
		if ki.Kind == KindTable && ki.Table == "actor" {
			foundTable = true
		}
	}
	if !foundTable {
		t.Fatal("schema-term table interpretation for 'actor' missing")
	}
	// Without schema terms there is no interpretation for "actor" (it does
	// not occur as a value).
	c = GenerateCandidates(f.ix, []string{"actor"}, GenerateOptionsConfig{})
	if len(c.PerKeyword[0]) != 0 || len(c.Unmatched) != 1 {
		t.Fatalf("expected 'actor' unmatched without schema terms: %v", c.PerKeyword[0])
	}
}

func TestGenerateCandidatesCapPrefersFrequent(t *testing.T) {
	f := newFixture(t)
	c := GenerateCandidates(f.ix, []string{"hanks"}, GenerateOptionsConfig{MaxPerKeyword: 1})
	if len(c.PerKeyword[0]) != 1 {
		t.Fatalf("cap violated: %v", c.PerKeyword[0])
	}
}

func TestGenerateCandidatesUnmatched(t *testing.T) {
	f := newFixture(t)
	c := GenerateCandidates(f.ix, []string{"zzzz", "hanks"}, GenerateOptionsConfig{})
	if len(c.Unmatched) != 1 || c.Unmatched[0] != 0 {
		t.Fatalf("Unmatched = %v", c.Unmatched)
	}
	if got := c.MatchedPositions(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("MatchedPositions = %v", got)
	}
}

func TestGenerateComplete(t *testing.T) {
	f := newFixture(t)
	c := GenerateCandidates(f.ix, []string{"hanks", "2001"}, GenerateOptionsConfig{})
	space := GenerateComplete(c, f.cat, GenerateConfig{})
	if len(space) == 0 {
		t.Fatal("empty interpretation space")
	}
	for _, q := range space {
		if !q.IsComplete() {
			t.Fatalf("incomplete interpretation in space: %v", q)
		}
	}
	// The single-table interpretation σ_{hanks∈title ∧ 2001∈year}(movie)
	// must be present.
	foundSingle := false
	// The join interpretation actor:"hanks" ⋈ acts ⋈ movie:"2001" too.
	foundJoin := false
	for _, q := range space {
		s := q.String()
		if strings.Contains(s, "movie") && q.Template.Size() == 1 &&
			strings.Contains(s, "title") && strings.Contains(s, "year") {
			foundSingle = true
		}
		if q.Template.Size() == 3 && strings.Contains(s, "actor") &&
			strings.Contains(s, "year") && strings.Contains(s, "name") {
			foundJoin = true
		}
	}
	if !foundSingle {
		t.Error("single-table movie interpretation missing")
	}
	if !foundJoin {
		t.Error("actor ⋈ acts ⋈ movie interpretation missing")
	}
	// All keys distinct.
	seen := map[string]bool{}
	for _, q := range space {
		if seen[q.Key()] {
			t.Fatalf("duplicate interpretation: %s", q.Key())
		}
		seen[q.Key()] = true
	}
}

func TestGenerateCompleteMinimality(t *testing.T) {
	f := newFixture(t)
	c := GenerateCandidates(f.ix, []string{"hanks"}, GenerateOptionsConfig{})
	space := GenerateComplete(c, f.cat, GenerateConfig{})
	for _, q := range space {
		// Single keyword: every interpretation must be a single table; any
		// join would have a free leaf.
		if q.Template.Size() != 1 {
			t.Fatalf("non-minimal interpretation for single keyword: %v", q)
		}
	}
	if len(space) != 3 {
		t.Fatalf("expected 3 single-keyword interpretations, got %d", len(space))
	}
}

func TestGenerateCompleteCap(t *testing.T) {
	f := newFixture(t)
	c := GenerateCandidates(f.ix, []string{"hanks", "2001"}, GenerateOptionsConfig{})
	space := GenerateComplete(c, f.cat, GenerateConfig{MaxInterpretations: 2})
	if len(space) != 2 {
		t.Fatalf("cap violated: %d", len(space))
	}
}

func TestGenerateCompleteSkipsUnmatched(t *testing.T) {
	f := newFixture(t)
	c := GenerateCandidates(f.ix, []string{"hanks", "qqqq"}, GenerateOptionsConfig{})
	space := GenerateComplete(c, f.cat, GenerateConfig{})
	if len(space) == 0 {
		t.Fatal("unmatched keyword should be excluded, not kill the space")
	}
	for _, q := range space {
		if q.IsComplete() {
			t.Fatal("interpretation cannot be complete with an unmatched keyword")
		}
		if len(q.Bindings) != 1 {
			t.Fatalf("expected 1 binding, got %d", len(q.Bindings))
		}
	}
}

func TestJoinPlanExecution(t *testing.T) {
	f := newFixture(t)
	c := GenerateCandidates(f.ix, []string{"hanks", "terminal"}, GenerateOptionsConfig{})
	space := GenerateComplete(c, f.cat, GenerateConfig{})
	// Find actor:"hanks" ⋈ acts ⋈ movie:"terminal" and execute it.
	for _, q := range space {
		if q.Template.Size() != 3 {
			continue
		}
		hasName, hasTitle := false, false
		for _, b := range q.Bindings {
			if b.KI.Attr.String() == "actor.name" {
				hasName = true
			}
			if b.KI.Attr.String() == "movie.title" {
				hasTitle = true
			}
		}
		if !hasName || !hasTitle {
			continue
		}
		plan, err := q.JoinPlan()
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.db.Execute(plan, relstore.ExecuteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 {
			t.Fatalf("expected exactly Tom Hanks in The Terminal, got %d results", len(res))
		}
		return
	}
	t.Fatal("expected join interpretation not found")
}

func TestJoinPlanGroupsCoOccurringKeywords(t *testing.T) {
	f := newFixture(t)
	c := GenerateCandidates(f.ix, []string{"tom", "hanks"}, GenerateOptionsConfig{})
	space := GenerateComplete(c, f.cat, GenerateConfig{})
	for _, q := range space {
		if q.Template.Size() != 1 || q.Template.Tree.Tables[0] != "actor" {
			continue
		}
		both := 0
		for _, b := range q.Bindings {
			if b.KI.Attr.String() == "actor.name" {
				both++
			}
		}
		if both != 2 {
			continue
		}
		plan, err := q.JoinPlan()
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Nodes[0].Predicates) != 1 {
			t.Fatalf("co-located keywords should group into one predicate: %v",
				plan.Nodes[0].Predicates)
		}
		if len(plan.Nodes[0].Predicates[0].Keywords) != 2 {
			t.Fatalf("grouped predicate keywords = %v", plan.Nodes[0].Predicates[0].Keywords)
		}
		return
	}
	t.Fatal("σ_{tom,hanks⊂name}(actor) interpretation not found")
}

func TestJoinPlanErrors(t *testing.T) {
	q := &Interpretation{Keywords: []string{"x"}}
	if _, err := q.JoinPlan(); err == nil {
		t.Fatal("nil template should error")
	}
	tpl := NewTemplate(0, &schemagraph.JoinTree{Tables: []string{"actor"}})
	q = NewInterpretation([]string{"x"}, tpl, []Binding{{
		KI:  KeywordInterpretation{Pos: 0, Keyword: "x", Kind: KindValue, Attr: invindex.AttrRef{Table: "movie", Column: "title"}},
		Occ: 0,
	}})
	if _, err := q.JoinPlan(); err == nil {
		t.Fatal("mismatched occurrence table should error")
	}
	q = NewInterpretation([]string{"x"}, tpl, []Binding{{
		KI:  KeywordInterpretation{Pos: 0, Keyword: "x", Kind: KindValue, Attr: invindex.AttrRef{Table: "actor", Column: "name"}},
		Occ: 7,
	}})
	if _, err := q.JoinPlan(); err == nil {
		t.Fatal("out-of-range occurrence should error")
	}
}

func TestSubsumption(t *testing.T) {
	f := newFixture(t)
	c := GenerateCandidates(f.ix, []string{"hanks", "2001"}, GenerateOptionsConfig{})
	space := GenerateComplete(c, f.cat, GenerateConfig{})
	nameKI := KeywordInterpretation{Pos: 0, Keyword: "hanks", Kind: KindValue,
		Attr: invindex.AttrRef{Table: "actor", Column: "name"}}
	opt := NewOption(nameKI)
	subsumed, notSubsumed := 0, 0
	for _, q := range space {
		if opt.Subsumes(q) {
			subsumed++
			if !q.HasBinding(nameKI) {
				t.Fatal("subsumption/HasBinding mismatch")
			}
		} else {
			notSubsumed++
		}
	}
	if subsumed == 0 || notSubsumed == 0 {
		t.Fatalf("option should split the space: %d/%d", subsumed, notSubsumed)
	}
}

func TestInterpretationSubsumes(t *testing.T) {
	f := newFixture(t)
	c := GenerateCandidates(f.ix, []string{"hanks", "2001"}, GenerateOptionsConfig{})
	space := GenerateComplete(c, f.cat, GenerateConfig{})
	for _, q := range space {
		partial := NewInterpretation(q.Keywords, nil, q.Bindings[:1])
		if !partial.Subsumes(q) {
			t.Fatalf("prefix partial must subsume its completion: %v vs %v", partial, q)
		}
		if len(q.Bindings) > 1 && q.Subsumes(partial) {
			t.Fatal("complete must not subsume its strict partial")
		}
	}
}

func TestCollectOptions(t *testing.T) {
	f := newFixture(t)
	c := GenerateCandidates(f.ix, []string{"hanks", "2001"}, GenerateOptionsConfig{})
	space := GenerateComplete(c, f.cat, GenerateConfig{})
	opts := CollectOptions(space)
	if len(opts) == 0 {
		t.Fatal("no options collected")
	}
	seen := map[string]bool{}
	for _, o := range opts {
		if len(o.KIs) != 1 {
			t.Fatalf("expected single-element options, got %v", o)
		}
		if seen[o.Key()] {
			t.Fatalf("duplicate option %s", o.Key())
		}
		seen[o.Key()] = true
		// Every option must subsume at least one interpretation.
		any := false
		for _, q := range space {
			if o.Subsumes(q) {
				any = true
				break
			}
		}
		if !any {
			t.Fatalf("option %s subsumes nothing", o.Describe())
		}
	}
}

func TestDescribeAndString(t *testing.T) {
	ki := KeywordInterpretation{Pos: 0, Keyword: "hanks", Kind: KindValue,
		Attr: invindex.AttrRef{Table: "actor", Column: "name"}}
	if !strings.Contains(ki.Describe(), "actor.name") {
		t.Fatalf("Describe = %q", ki.Describe())
	}
	kt := KeywordInterpretation{Pos: 0, Keyword: "actor", Kind: KindTable, Table: "actor"}
	if !strings.Contains(kt.Describe(), "table") {
		t.Fatalf("Describe = %q", kt.Describe())
	}
	kc := KeywordInterpretation{Pos: 0, Keyword: "title", Kind: KindColumn,
		Attr: invindex.AttrRef{Table: "movie", Column: "title"}}
	if !strings.Contains(kc.Describe(), "attribute") {
		t.Fatalf("Describe = %q", kc.Describe())
	}
	if KindValue.String() != "value" || KindTable.String() != "table" || KindColumn.String() != "column" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still render")
	}
	opt := NewOption(ki, kt)
	if !strings.Contains(opt.Describe(), " and ") {
		t.Fatalf("multi-element option describe = %q", opt.Describe())
	}
}

func TestTemplateOccurrences(t *testing.T) {
	tree := &schemagraph.JoinTree{
		Tables: []string{"actor", "acts", "movie", "acts", "actor"},
		TreeEdges: []schemagraph.TreeEdge{
			{From: 1, To: 0, FromColumn: "actor_id", ToColumn: "id"},
			{From: 1, To: 2, FromColumn: "movie_id", ToColumn: "id"},
			{From: 3, To: 2, FromColumn: "movie_id", ToColumn: "id"},
			{From: 3, To: 4, FromColumn: "actor_id", ToColumn: "id"},
		},
	}
	tpl := NewTemplate(1, tree)
	if got := tpl.Occurrences("actor"); len(got) != 2 {
		t.Fatalf("actor occurrences = %v", got)
	}
	if got := tpl.Occurrences("movie"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("movie occurrences = %v", got)
	}
	if tpl.Size() != 5 {
		t.Fatalf("Size = %d", tpl.Size())
	}
}

func TestCatalogUsage(t *testing.T) {
	f := newFixture(t)
	if f.cat.TotalUsage() != 0 {
		t.Fatal("fresh catalogue should have no usage")
	}
	f.cat.RecordUsage(0, 5)
	f.cat.RecordUsage(1, 3)
	f.cat.RecordUsage(0, 2)
	if f.cat.TotalUsage() != 10 {
		t.Fatalf("TotalUsage = %d", f.cat.TotalUsage())
	}
	if f.cat.UsageCount[0] != 7 {
		t.Fatalf("UsageCount[0] = %d", f.cat.UsageCount[0])
	}
}

func TestNormalizeKeywords(t *testing.T) {
	c := GenerateCandidates(invindex.Build(relstore.NewDatabase("e")),
		[]string{" Hanks ", "TERMINAL"}, GenerateOptionsConfig{})
	if c.Keywords[0] != "hanks" || c.Keywords[1] != "terminal" {
		t.Fatalf("Keywords = %v", c.Keywords)
	}
}

func TestFilterSegments(t *testing.T) {
	f := newFixture(t)
	c := GenerateCandidates(f.ix, []string{"tom", "hanks"}, GenerateOptionsConfig{})
	space := GenerateComplete(c, f.cat, GenerateConfig{})
	// No segments: identity.
	if got := FilterSegments(space, nil); len(got) != len(space) {
		t.Fatal("empty segments must not filter")
	}
	filtered := FilterSegments(space, [][]int{{0, 1}})
	if len(filtered) == 0 || len(filtered) >= len(space) {
		t.Fatalf("segment filter degenerate: %d of %d", len(filtered), len(space))
	}
	for _, q := range filtered {
		var attr string
		occ := -1
		for _, b := range q.Bindings {
			if attr == "" {
				attr = b.KI.Attr.String()
				occ = b.Occ
				continue
			}
			if b.KI.Attr.String() != attr || b.Occ != occ {
				t.Fatalf("scattered phrase survived: %v", q)
			}
		}
	}
	// Single-position segments are ignored.
	if got := FilterSegments(space, [][]int{{0}}); len(got) != len(space) {
		t.Fatal("singleton segment must not filter")
	}
}

func TestAggregateInterpretations(t *testing.T) {
	f := newFixture(t)
	c := GenerateCandidates(f.ix, []string{"number", "hanks"},
		GenerateOptionsConfig{IncludeAggregates: true})
	// "number" maps to the COUNT operator.
	foundAgg := false
	for _, ki := range c.PerKeyword[0] {
		if ki.Kind == KindAggregate && ki.Agg == "count" {
			foundAgg = true
			if ki.TargetTable() != "" {
				t.Fatal("aggregate should not target a table")
			}
			if !strings.Contains(ki.Describe(), "count") {
				t.Fatalf("Describe = %q", ki.Describe())
			}
		}
	}
	if !foundAgg {
		t.Fatal("no aggregate candidate for 'number'")
	}
	space := GenerateComplete(c, f.cat, GenerateConfig{})
	foundAggInterp := false
	for _, q := range space {
		if q.Aggregate() == "count" {
			foundAggInterp = true
			if !strings.HasPrefix(q.String(), "COUNT(") {
				t.Fatalf("aggregate rendering = %q", q.String())
			}
			// The aggregate interpretation still yields an executable plan.
			plan, err := q.JoinPlan()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.db.Count(plan, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !foundAggInterp {
		t.Fatal("no complete aggregate interpretation")
	}
	// An aggregate alone (no grounded binding) must be rejected as
	// non-minimal: query just "number".
	cOnly := GenerateCandidates(f.ix, []string{"number"},
		GenerateOptionsConfig{IncludeAggregates: true})
	if got := GenerateComplete(cOnly, f.cat, GenerateConfig{}); len(got) != 0 {
		t.Fatalf("aggregate-only interpretation accepted: %v", got)
	}
	if KindAggregate.String() != "aggregate" {
		t.Fatal("Kind string")
	}
}

func TestSQLRendering(t *testing.T) {
	f := newFixture(t)
	c := GenerateCandidates(f.ix, []string{"hanks", "terminal"}, GenerateOptionsConfig{})
	space := GenerateComplete(c, f.cat, GenerateConfig{})
	for _, q := range space {
		sql, err := q.SQL()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(sql, "SELECT * FROM ") {
			t.Fatalf("SQL = %q", sql)
		}
		if !strings.Contains(sql, "LIKE '%hanks%'") && !strings.Contains(sql, "LIKE '%terminal%'") {
			t.Fatalf("SQL lacks predicates: %q", sql)
		}
		// Join interpretations carry join conditions.
		if q.Template.Size() == 3 && !strings.Contains(sql, "t0.") {
			t.Fatalf("join SQL lacks aliases: %q", sql)
		}
		if q.Template.Size() == 3 && strings.Count(sql, " = ") != 2 {
			t.Fatalf("3-node join needs 2 equalities: %q", sql)
		}
	}
	// Aggregates render as COUNT.
	ca := GenerateCandidates(f.ix, []string{"number", "hanks"},
		GenerateOptionsConfig{IncludeAggregates: true})
	for _, q := range GenerateComplete(ca, f.cat, GenerateConfig{}) {
		if q.Aggregate() == "" {
			continue
		}
		sql, err := q.SQL()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(sql, "SELECT COUNT(*) FROM ") {
			t.Fatalf("aggregate SQL = %q", sql)
		}
	}
	// Template-less interpretations cannot render.
	if _, err := (&Interpretation{}).SQL(); err == nil {
		t.Fatal("template-less SQL accepted")
	}
	// Quote escaping.
	if got := escapeSQL("o'brien"); got != "o''brien" {
		t.Fatalf("escapeSQL = %q", got)
	}
}
