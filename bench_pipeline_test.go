package keysearch_test

import (
	"testing"

	"repro/internal/benchpipe"
)

// pipelineEnv shares the large-dataset engines across sub-benchmarks.
var pipelineEnv = benchpipe.NewEnv()

// BenchmarkPipelineSequentialVsParallel measures the end-to-end
// interpretation pipeline (candidate generation → sharded enumeration →
// concurrent ranking → fanned-out top-k execution) over the large seed
// dataset, varying keyword count and parallelism, plus score-cache
// ablation legs. p=1 is the sequential baseline; the determinism suite
// guarantees every level returns byte-identical responses, so the
// comparison is purely about speed.
//
//	go test -run '^$' -bench BenchmarkPipelineSequentialVsParallel .
//
// `make bench` persists the same grid to BENCH_pipeline.json via
// cmd/bench so CI tracks the trajectory across PRs. -short trims the grid
// to the quick subset.
func BenchmarkPipelineSequentialVsParallel(b *testing.B) {
	for _, c := range benchpipe.Cases(testing.Short()) {
		c := c
		b.Run(c.Name(), func(b *testing.B) { pipelineEnv.Run(b, c) })
	}
}
