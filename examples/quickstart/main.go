// Quickstart: define a schema, load rows, and run keyword search.
//
// This is the minimal end-to-end use of the library: an ambiguous keyword
// query ("london") is translated into its ranked structured
// interpretations, and the top interpretation's results are printed.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	keysearch "repro"
)

func main() {
	schema := []keysearch.Table{
		{
			Name:       "actor",
			Columns:    []keysearch.Column{{Name: "id"}, {Name: "name", Text: true}},
			PrimaryKey: "id",
		},
		{
			Name:       "movie",
			Columns:    []keysearch.Column{{Name: "id"}, {Name: "title", Text: true}, {Name: "year", Text: true}},
			PrimaryKey: "id",
		},
		{
			Name:    "acts",
			Columns: []keysearch.Column{{Name: "actor_id"}, {Name: "movie_id"}, {Name: "role", Text: true}},
			ForeignKeys: []keysearch.ForeignKey{
				{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
				{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
			},
		},
	}
	eng, err := keysearch.New(schema)
	if err != nil {
		log.Fatal(err)
	}

	rows := [][]string{
		{"actor", "a1", "Tom Hanks"},
		{"actor", "a2", "Jack London"},
		{"movie", "m1", "The Terminal", "2004"},
		{"movie", "m2", "London Boulevard", "2010"},
		{"acts", "a1", "m1", "Viktor Navorski"},
		{"acts", "a2", "m2", "Mitchel"},
	}
	for _, r := range rows {
		if err := eng.Insert(r[0], r[1:]...); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	const q = "london"
	fmt.Printf("keyword query: %q\n\n", q)
	resp, err := eng.Search(ctx, keysearch.SearchRequest{Query: q, K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ranked interpretations:")
	for i, r := range resp.Results {
		fmt.Printf("  %d. P=%.3f  %s\n", i+1, r.Probability, r.Query)
	}

	fmt.Println("\nresults of the top interpretation:")
	top, err := resp.Results[0].Rows(5)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range top {
		fmt.Printf("  %v\n", row)
	}
}
