package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"

	keysearch "repro"
	"repro/httpapi"
	"repro/internal/datagen"
	"repro/internal/relstore"
)

// OpKind names one request class of the mixed workload.
type OpKind string

const (
	OpSearch    OpKind = "search"
	OpRows      OpKind = "rows"
	OpDiversify OpKind = "diversify"
	OpConstruct OpKind = "construct"
	OpMutate    OpKind = "mutate"
)

// Mix weights the request classes of the workload. Weights are
// relative, not percentages; zero drops the class. The default mix is
// read-heavy with a trickle of writes, the shape of an interactive
// search service: half plain interpretation search, a fifth row
// retrieval (the expensive joins), some diversification, some
// interactive construction dialogues, and a few mutation batches.
type Mix struct {
	Search    int
	Rows      int
	Diversify int
	Construct int
	Mutate    int
}

// DefaultMix returns the standard read-heavy mix.
func DefaultMix() Mix {
	return Mix{Search: 50, Rows: 20, Diversify: 15, Construct: 10, Mutate: 5}
}

func (m Mix) total() int {
	return m.Search + m.Rows + m.Diversify + m.Construct + m.Mutate
}

// Op is one pre-generated request of the workload: the keyword query it
// carries (for reporting) and the request body ready to POST. Construct
// ops are session openers — the runner drives the dialogue to
// completion at issue time. Mutate ops are templates — the runner
// substitutes a globally unique key sequence at issue time so replays
// of the finite op list never collide on primary keys.
type Op struct {
	Kind  OpKind
	Query string
	Body  []byte
}

// WorkloadConfig tunes workload generation.
type WorkloadConfig struct {
	// Ops is the number of operations to generate (default 512). Runners
	// cycle through the list, so it bounds variety, not run length.
	Ops int
	// Mix weights the request classes (zero value = DefaultMix).
	Mix Mix
	// K is the top-k of search/rows/diversify requests (default 10).
	K    int
	Seed int64

	// ZipfS, when > 1, turns on the repeated-query mode: instead of one
	// distinct query per op, queries are drawn from a hot set of HotSet
	// distinct queries with Zipf(s=ZipfS) rank frequencies — rank 1
	// dominating, a long repeated tail — the shape real query logs have
	// and the regime an answer cache lives or dies in. Values ≤ 1 keep
	// the default all-distinct stream (math/rand's Zipf requires s > 1).
	ZipfS float64
	// HotSet is the number of distinct queries behind the Zipf draw
	// (default 64; only with ZipfS > 1).
	HotSet int
}

func (c *WorkloadConfig) defaults() {
	if c.Ops <= 0 {
		c.Ops = 512
	}
	if c.Mix.total() == 0 {
		c.Mix = DefaultMix()
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.ZipfS > 1 && c.HotSet <= 0 {
		c.HotSet = 64
	}
}

// BuildWorkload generates a deterministic mixed op stream against the
// database: queries are sampled by the datagen workload generators
// (Zipf-skewed names, multi-concept combinations), so the stream
// contains the same heavy-tailed query population the paper's query
// logs exhibit — including the surname pairs whose interpretation
// fan-out makes row retrieval orders of magnitude more expensive than
// the median. The same (db, cfg) always yields byte-identical ops.
func BuildWorkload(db *relstore.Database, kind DatasetKind, cfg WorkloadConfig) ([]Op, error) {
	cfg.defaults()
	distinct := cfg.Ops
	if cfg.ZipfS > 1 && cfg.HotSet < distinct {
		distinct = cfg.HotSet
	}
	var intents []datagen.Intent
	wcfg := datagen.WorkloadConfig{Queries: distinct, Seed: cfg.Seed}
	switch kind {
	case KindMusic:
		intents = datagen.MusicWorkload(db, wcfg)
	case KindMovies, "":
		intents = datagen.MovieWorkload(db, wcfg)
	default:
		return nil, fmt.Errorf("loadgen: unknown dataset kind %q", kind)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x1dea))
	if cfg.ZipfS > 1 && len(intents) > 0 {
		// Repeated-query mode: expand the hot set back to cfg.Ops draws
		// with Zipf-ranked frequencies. The generators order queries by
		// construction, so rank r maps to intent r — the first hot query
		// dominates exactly as in a real log.
		zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(intents)-1))
		drawn := make([]datagen.Intent, cfg.Ops)
		for i := range drawn {
			drawn[i] = intents[zipf.Uint64()]
		}
		intents = drawn
	}
	ops := make([]Op, 0, cfg.Ops)
	for i, in := range intents {
		q := strings.Join(in.Keywords, " ")
		var (
			op   Op
			body any
		)
		switch pickKind(rng, cfg.Mix) {
		case OpSearch:
			op = Op{Kind: OpSearch, Query: q}
			body = keysearch.SearchRequest{Query: q, K: cfg.K}
		case OpRows:
			op = Op{Kind: OpRows, Query: q}
			body = keysearch.RowsRequest{Query: q, K: cfg.K}
		case OpDiversify:
			op = Op{Kind: OpDiversify, Query: q}
			body = keysearch.DiversifyRequest{Query: q, K: cfg.K, Lambda: 0.5}
		case OpConstruct:
			op = Op{Kind: OpConstruct, Query: q}
			body = httpapi.ConstructStepRequest{
				Action: "start",
				Start:  &keysearch.ConstructRequest{Query: q},
			}
		case OpMutate:
			op = Op{Kind: OpMutate, Query: q}
			// Template batch: %d is replaced by a unique sequence number
			// at issue time (see mutateBody).
			b, err := json.Marshal(mutateTemplate(kind, i))
			if err != nil {
				return nil, err
			}
			op.Body = b
			ops = append(ops, op)
			continue
		}
		b, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		op.Body = b
		ops = append(ops, op)
	}
	return ops, nil
}

func pickKind(rng *rand.Rand, m Mix) OpKind {
	n := rng.Intn(m.total())
	if n -= m.Search; n < 0 {
		return OpSearch
	}
	if n -= m.Rows; n < 0 {
		return OpRows
	}
	if n -= m.Diversify; n < 0 {
		return OpDiversify
	}
	if n -= m.Construct; n < 0 {
		return OpConstruct
	}
	return OpMutate
}

// mutateTemplate builds an insert batch whose primary keys contain a
// "%d" placeholder for the issue-time sequence number.
func mutateTemplate(kind DatasetKind, i int) httpapi.MutateRequest {
	table, cols := "actor", 2
	if kind == KindMusic {
		table, cols = "artist", 2
	}
	name := fmt.Sprintf("Loadgen Subject %d", i)
	values := make([]string, cols)
	values[0] = "lg-%d"
	values[1] = name
	return httpapi.MutateRequest{Mutations: []keysearch.Mutation{{
		Op:     keysearch.OpInsert,
		Table:  table,
		Values: values,
	}}}
}

// mutateBody instantiates a mutate template with a unique sequence
// number, keeping primary keys collision-free across op-list replays.
func mutateBody(template []byte, seq uint64) []byte {
	return []byte(strings.ReplaceAll(string(template), "lg-%d", fmt.Sprintf("lg-%d", seq)))
}
