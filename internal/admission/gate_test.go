package admission

import (
	"context"
	"testing"
	"time"

	"repro/internal/metrics"
)

// acquireResult is one Acquire call run on its own goroutine.
type acquireResult struct {
	id      int
	out     Outcome
	release func()
}

// enqueue starts an Acquire and waits (bounded) until the gate has
// actually queued it, so tests control arrival order deterministically.
func enqueue(t *testing.T, g *Gate, ctx context.Context, id int, cost int64, ch chan acquireResult) {
	t.Helper()
	before := g.Stats().Queued
	go func() {
		rel, out := g.Acquire(ctx, cost)
		ch <- acquireResult{id: id, out: out, release: rel}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for g.Stats().Queued == before {
		if time.Now().After(deadline) {
			t.Fatalf("waiter %d never queued", id)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func mustAdmit(t *testing.T, g *Gate, cost int64) func() {
	t.Helper()
	rel, out := g.Acquire(context.Background(), cost)
	if out != Admitted {
		t.Fatalf("expected immediate admission, got %v", out)
	}
	return rel
}

// TestFIFOWithinBand: with slots exhausted, queued waiters of one band
// are dispatched strictly in arrival order.
func TestFIFOWithinBand(t *testing.T) {
	g := NewGate(GateConfig{Limit: 1, MaxQueue: 8})
	rel := mustAdmit(t, g, 1)

	ch := make(chan acquireResult, 3)
	for i := 1; i <= 3; i++ {
		enqueue(t, g, context.Background(), i, 1, ch)
	}
	rel()
	for want := 1; want <= 3; want++ {
		r := <-ch
		if r.out != Admitted || r.id != want {
			t.Fatalf("dispatch order: got waiter %d (%v), want %d", r.id, r.out, want)
		}
		r.release()
	}
}

// TestCrossBandDispatchIsGloballyFIFO: while slots exist for everyone,
// a heavy waiter that arrived first is served before a cheap one that
// arrived later — cost only matters under queue pressure.
func TestCrossBandDispatchIsGloballyFIFO(t *testing.T) {
	g := NewGate(GateConfig{Limit: 1, MaxQueue: 8, BandBounds: []int64{10}})
	rel := mustAdmit(t, g, 1)

	ch := make(chan acquireResult, 2)
	enqueue(t, g, context.Background(), 1, 100, ch) // heavy, first
	enqueue(t, g, context.Background(), 2, 1, ch)   // cheap, second
	rel()
	r := <-ch
	if r.id != 1 || r.out != Admitted {
		t.Fatalf("first dispatched waiter = %d (%v), want the older heavy one", r.id, r.out)
	}
	r.release()
	r = <-ch
	if r.id != 2 || r.out != Admitted {
		t.Fatalf("second dispatched waiter = %d (%v)", r.id, r.out)
	}
	r.release()
}

// TestEvictsHeaviestYoungestUnderPressure: a full queue sheds the
// youngest waiter of the heaviest band to admit a cheaper newcomer,
// and rejects newcomers that are themselves the heaviest.
func TestEvictsHeaviestYoungestUnderPressure(t *testing.T) {
	stats := &metrics.ServingStats{}
	g := NewGate(GateConfig{Limit: 1, MaxQueue: 2, BandBounds: []int64{10}, Stats: stats})
	rel := mustAdmit(t, g, 1)

	ch := make(chan acquireResult, 4)
	enqueue(t, g, context.Background(), 1, 100, ch) // heavy, oldest
	enqueue(t, g, context.Background(), 2, 200, ch) // heavy, youngest → the victim
	if got := stats.Snapshot().Queued; got != 2 {
		t.Fatalf("queued gauge = %d, want 2", got)
	}

	// Cheap newcomer under pressure: evicts waiter 2, takes its spot.
	// (The eviction happens inside the newcomer's Acquire before it
	// enqueues itself, so receiving the Evicted result proves the
	// newcomer is queued — total queue depth never changes.)
	go func() {
		rel3, out := g.Acquire(context.Background(), 1)
		ch <- acquireResult{id: 3, out: out, release: rel3}
	}()
	r := <-ch
	if r.id != 2 || r.out != Evicted {
		t.Fatalf("victim = waiter %d (%v), want youngest heavy (2) Evicted", r.id, r.out)
	}

	// Heavy newcomer under pressure: it is the heaviest itself → bounced.
	if _, out := g.Acquire(context.Background(), 500); out != RejectedQueueFull {
		t.Fatalf("heavy newcomer outcome = %v, want RejectedQueueFull", out)
	}

	// Drain: oldest heavy first (global FIFO), then the cheap one.
	rel()
	r = <-ch
	if r.id != 1 || r.out != Admitted {
		t.Fatalf("first drained = %d (%v), want 1", r.id, r.out)
	}
	r.release()
	r = <-ch
	if r.id != 3 || r.out != Admitted {
		t.Fatalf("second drained = %d (%v), want 3", r.id, r.out)
	}
	r.release()

	st := g.Stats()
	if st.Bands[1].Evicted != 1 || st.Bands[1].Rejected != 1 {
		t.Fatalf("heavy band counters: %+v", st.Bands[1])
	}
	if st.Bands[0].Admitted != 2 { // initial holder + waiter 3
		t.Fatalf("cheap band admitted = %d, want 2", st.Bands[0].Admitted)
	}
	if got := stats.Snapshot().Queued; got != 0 {
		t.Fatalf("queued gauge after drain = %d, want 0", got)
	}
}

// TestNoQueueShedsImmediately: MaxQueue 0 turns every over-limit
// request away without queueing.
func TestNoQueueShedsImmediately(t *testing.T) {
	g := NewGate(GateConfig{Limit: 1})
	rel := mustAdmit(t, g, 1)
	defer rel()
	if _, out := g.Acquire(context.Background(), 1); out != RejectedQueueFull {
		t.Fatalf("outcome = %v, want RejectedQueueFull", out)
	}
}

// TestQueueTimeout: a waiter that outlives QueueTimeout is shed with
// TimedOut and leaves no queue residue.
func TestQueueTimeout(t *testing.T) {
	g := NewGate(GateConfig{Limit: 1, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond})
	rel := mustAdmit(t, g, 1)
	defer rel()

	ch := make(chan acquireResult, 1)
	enqueue(t, g, context.Background(), 1, 1, ch)
	r := <-ch
	if r.out != TimedOut {
		t.Fatalf("outcome = %v, want TimedOut", r.out)
	}
	st := g.Stats()
	if st.Queued != 0 || st.Bands[0].TimedOut != 1 {
		t.Fatalf("post-timeout stats: %+v", st)
	}
}

// TestContextCancelWhileQueued: cancelling the request context
// releases the queue slot and reports Canceled.
func TestContextCancelWhileQueued(t *testing.T) {
	g := NewGate(GateConfig{Limit: 1, MaxQueue: 4})
	rel := mustAdmit(t, g, 1)
	defer rel()

	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan acquireResult, 1)
	enqueue(t, g, ctx, 1, 1, ch)
	cancel()
	r := <-ch
	if r.out != Canceled {
		t.Fatalf("outcome = %v, want Canceled", r.out)
	}
	st := g.Stats()
	if st.Queued != 0 || st.Bands[0].Canceled != 1 {
		t.Fatalf("post-cancel stats: %+v", st)
	}
}

// TestSetLimitGrowDispatches: raising the limit immediately admits
// queued waiters into the new slots.
func TestSetLimitGrowDispatches(t *testing.T) {
	g := NewGate(GateConfig{Limit: 1, MaxQueue: 4})
	rel := mustAdmit(t, g, 1)

	ch := make(chan acquireResult, 2)
	enqueue(t, g, context.Background(), 1, 1, ch)
	enqueue(t, g, context.Background(), 2, 1, ch)
	g.SetLimit(3)
	for i := 0; i < 2; i++ {
		r := <-ch
		if r.out != Admitted {
			t.Fatalf("waiter %d outcome = %v after grow", r.id, r.out)
		}
		defer r.release()
	}
	if got := g.Limit(); got != 3 {
		t.Fatalf("limit = %d, want 3", got)
	}
	rel()
}

// TestSetLimitShrinkDrainsNaturally: shrinking below the in-flight
// count interrupts nothing; the gate just stops dispatching until the
// overage drains.
func TestSetLimitShrinkDrainsNaturally(t *testing.T) {
	g := NewGate(GateConfig{Limit: 2, MaxQueue: 4})
	relA := mustAdmit(t, g, 1)
	relB := mustAdmit(t, g, 1)

	g.SetLimit(1)
	ch := make(chan acquireResult, 1)
	enqueue(t, g, context.Background(), 1, 1, ch)

	relA() // in-flight 1 == limit 1: waiter must stay queued
	select {
	case r := <-ch:
		t.Fatalf("waiter dispatched while at shrunken limit: %v", r.out)
	case <-time.After(20 * time.Millisecond):
	}
	relB() // in-flight 0: now the waiter gets the slot
	r := <-ch
	if r.out != Admitted {
		t.Fatalf("outcome = %v, want Admitted after drain", r.out)
	}
	r.release()
}

// TestReleaseIsIdempotent: calling release twice must not double-free
// a slot.
func TestReleaseIsIdempotent(t *testing.T) {
	g := NewGate(GateConfig{Limit: 1})
	rel := mustAdmit(t, g, 1)
	rel()
	rel()
	if st := g.Stats(); st.InFlight != 0 {
		t.Fatalf("in-flight = %d after double release, want 0", st.InFlight)
	}
	rel2 := mustAdmit(t, g, 1)
	rel2()
}

// TestOutcomeString pins the shed-code labels the HTTP layer reuses.
func TestOutcomeString(t *testing.T) {
	labels := map[Outcome]string{
		Admitted: "admitted", RejectedQueueFull: "queue_full",
		Evicted: "queue_evicted", TimedOut: "queue_timeout", Canceled: "canceled",
	}
	for o, want := range labels {
		if o.String() != want {
			t.Fatalf("%d label = %q, want %q", o, o.String(), want)
		}
	}
}
