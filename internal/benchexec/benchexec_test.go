package benchexec

import "testing"

// sharedEnv is reused across benchmarks so the dataset and plan list are
// built once per test binary.
var sharedEnv = NewEnv()

// TestModesAgree is the harness's own safety net: every execution mode
// must produce the identical result total on the full-scale workload.
func TestModesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale dataset build in -short mode")
	}
	if err := sharedEnv.Verify(); err != nil {
		t.Fatal(err)
	}
}

// The BenchmarkExecute* legs measure one simulated top-k request each:
// all ranked candidate networks of the benchmark query, with a per-plan
// materialisation limit. CI runs them with -bench=Execute -benchtime=1x
// as a compile-and-run smoke on every push.

func BenchmarkExecuteScan(b *testing.B)     { sharedEnv.Run(b, ModeScan) }
func BenchmarkExecutePostings(b *testing.B) { sharedEnv.Run(b, ModePostings) }
func BenchmarkExecuteCached(b *testing.B)   { sharedEnv.Run(b, ModeCached) }
func BenchmarkExecuteCount(b *testing.B)    { sharedEnv.Run(b, ModeCount) }
