package expt

import (
	"fmt"
	"time"

	"repro/internal/datagen"
	"repro/internal/divq"
	"repro/internal/metrics"
	"repro/internal/prob"
)

// divqModel is the Chapter 4 configuration: co-occurrence-aware relevance
// (Equation 4.2).
func divqModel(env *Env) *prob.Model {
	return env.Model(prob.Config{UseCoOccurrence: true})
}

// rankedFor materialises and ranks the non-empty interpretations of an
// intent's keyword query, capped at top-25 as in Section 4.6.2.
func rankedFor(env *Env, model *prob.Model, in datagen.Intent, cap int) ([]prob.Scored, error) {
	c := env.Candidates(in.Keywords)
	space := env.Space(c, 0)
	ranked := model.Rank(space)
	if cap > 0 && len(ranked) > cap {
		ranked = ranked[:cap]
	}
	return divq.FilterNonEmpty(env.DB, ranked)
}

// Table4_1 prints the worked example of Table 4.1: the top-3 relevance
// ranking against the top-3 diversification of one ambiguous query.
func Table4_1(env *Env, in datagen.Intent, lambda float64) (*Table, error) {
	model := divqModel(env)
	ranked, err := rankedFor(env, model, in, 25)
	if err != nil {
		return nil, err
	}
	k := 3
	if k > len(ranked) {
		k = len(ranked)
	}
	div := divq.Diversify(ranked, divq.Config{Lambda: lambda, K: k})
	t := &Table{
		Title:   fmt.Sprintf("Table 4.1 (%s): top-%d ranking vs diversification for %v", env.Name, k, in.Keywords),
		Headers: []string{"rank", "P", "ranking", "P", "diversification"},
	}
	for i := 0; i < k; i++ {
		t.AddRow(i+1, ranked[i].Prob, ranked[i].Q.String(), div[i].Prob, div[i].Q.String())
	}
	return t, nil
}

// Fig41Result carries the probability-ratio curves of Figure 4.1.
type Fig41Result struct {
	Table *Table
	// AvgPR[i] / MaxPR[i] aggregate PR at rank i+1 across queries.
	AvgPR []float64
	MaxPR []float64
}

// Fig4_1 computes the maximum and average probability ratio PR_i per rank
// over the workload (Figure 4.1): how quickly interpretation probability
// decays with rank.
func Fig4_1(env *Env, intents []datagen.Intent, maxRank int) (*Fig41Result, error) {
	model := divqModel(env)
	sums := make([]float64, maxRank)
	maxs := make([]float64, maxRank)
	counts := make([]int, maxRank)
	for _, in := range intents {
		ranked, err := rankedFor(env, model, in, maxRank)
		if err != nil {
			return nil, err
		}
		pr := divq.ProbabilityRatio(ranked)
		for i := 1; i < len(pr) && i < maxRank; i++ {
			sums[i] += pr[i]
			counts[i]++
			if pr[i] > maxs[i] {
				maxs[i] = pr[i]
			}
		}
	}
	res := &Fig41Result{Table: &Table{
		Title:   fmt.Sprintf("Figure 4.1 (%s): probability ratio vs rank", env.Name),
		Headers: []string{"rank", "avg PR", "max PR", "queries"},
	}}
	for i := 1; i < maxRank; i++ {
		if counts[i] == 0 {
			continue
		}
		avg := sums[i] / float64(counts[i])
		res.AvgPR = append(res.AvgPR, avg)
		res.MaxPR = append(res.MaxPR, maxs[i])
		res.Table.AddRow(i+1, fmt.Sprintf("%.4f", avg), fmt.Sprintf("%.4f", maxs[i]), counts[i])
	}
	return res, nil
}

// Fig42Point is one (α, k, class) cell of Figure 4.2.
type Fig42Point struct {
	Alpha        float64
	K            int
	MultiConcept bool
	Ranking      float64
	Diversified  float64
}

// Fig4_2 measures α-nDCG-W at top-k for the relevance ranking and for
// DivQ diversification (λ = 0.1 as in Section 4.6.3), split into
// single-concept and multi-concept queries, for α ∈ {0, 0.5, 0.99}.
func Fig4_2(env *Env, intents []datagen.Intent, alphas []float64, maxK int, lambda float64) ([]Fig42Point, *Table, error) {
	model := divqModel(env)
	type obs struct{ rank, div []float64 } // per-query values at each k
	cells := map[string]*obs{}
	key := func(alpha float64, k int, mc bool) string {
		return fmt.Sprintf("%v|%d|%v", alpha, k, mc)
	}
	for _, in := range intents {
		ranked, err := rankedFor(env, model, in, 25)
		if err != nil {
			return nil, nil, err
		}
		if len(ranked) < 2 {
			continue
		}
		k := maxK
		if k > len(ranked) {
			k = len(ranked)
		}
		rel := IntentRelevance(in)
		div := divq.Diversify(ranked, divq.Config{Lambda: lambda, K: k})
		universe, err := divq.ToItems(env.DB, ranked, rel, 200)
		if err != nil {
			return nil, nil, err
		}
		rankItems := universe[:k]
		divItems, err := divq.ToItems(env.DB, div, rel, 200)
		if err != nil {
			return nil, nil, err
		}
		ideal := metrics.IdealOrder(universe)
		for _, alpha := range alphas {
			aR := metrics.AlphaNDCGW(rankItems, ideal, alpha)
			aD := metrics.AlphaNDCGW(divItems, ideal, alpha)
			for kk := 1; kk <= k; kk++ {
				c := cells[key(alpha, kk, in.MultiConcept)]
				if c == nil {
					c = &obs{}
					cells[key(alpha, kk, in.MultiConcept)] = c
				}
				c.rank = append(c.rank, aR[kk-1])
				c.div = append(c.div, aD[kk-1])
			}
		}
	}
	table := &Table{
		Title:   fmt.Sprintf("Figure 4.2 (%s): α-nDCG-W, ranking vs diversification", env.Name),
		Headers: []string{"alpha", "k", "class", "rank", "div", "n"},
	}
	var points []Fig42Point
	for _, alpha := range alphas {
		for kk := 1; kk <= maxK; kk++ {
			for _, mc := range []bool{false, true} {
				c := cells[key(alpha, kk, mc)]
				if c == nil || len(c.rank) == 0 {
					continue
				}
				p := Fig42Point{
					Alpha: alpha, K: kk, MultiConcept: mc,
					Ranking:     metrics.Mean(c.rank),
					Diversified: metrics.Mean(c.div),
				}
				points = append(points, p)
				class := "sc"
				if mc {
					class = "mc"
				}
				table.AddRow(alpha, kk, class, p.Ranking, p.Diversified, len(c.rank))
			}
		}
	}
	return points, table, nil
}

// Fig43Point is one k-cell of the WS-recall comparison (Figure 4.3).
type Fig43Point struct {
	K           int
	Ranking     float64
	Diversified float64
}

// Fig4_3 measures WS-recall at top-k for ranking and diversification.
func Fig4_3(env *Env, intents []datagen.Intent, maxK int, lambda float64) ([]Fig43Point, *Table, error) {
	model := divqModel(env)
	rankSums := make([]float64, maxK+1)
	divSums := make([]float64, maxK+1)
	counts := make([]int, maxK+1)
	for _, in := range intents {
		ranked, err := rankedFor(env, model, in, 25)
		if err != nil {
			return nil, nil, err
		}
		if len(ranked) < 2 {
			continue
		}
		k := maxK
		if k > len(ranked) {
			k = len(ranked)
		}
		rel := IntentRelevance(in)
		div := divq.Diversify(ranked, divq.Config{Lambda: lambda, K: k})
		universe, err := divq.ToItems(env.DB, ranked, rel, 200)
		if err != nil {
			return nil, nil, err
		}
		divItems, err := divq.ToItems(env.DB, div, rel, 200)
		if err != nil {
			return nil, nil, err
		}
		wsR := metrics.WSRecall(universe[:k], universe)
		wsD := metrics.WSRecall(divItems, universe)
		for kk := 1; kk <= k; kk++ {
			rankSums[kk] += wsR[kk-1]
			divSums[kk] += wsD[kk-1]
			counts[kk]++
		}
	}
	table := &Table{
		Title:   fmt.Sprintf("Figure 4.3 (%s): WS-recall, ranking vs diversification", env.Name),
		Headers: []string{"k", "rank", "div", "n"},
	}
	var points []Fig43Point
	for kk := 1; kk <= maxK; kk++ {
		if counts[kk] == 0 {
			continue
		}
		p := Fig43Point{
			K:           kk,
			Ranking:     rankSums[kk] / float64(counts[kk]),
			Diversified: divSums[kk] / float64(counts[kk]),
		}
		points = append(points, p)
		table.AddRow(kk, p.Ranking, p.Diversified, counts[kk])
	}
	return points, table, nil
}

// Fig44Point is one λ-cell of the relevance/novelty trade-off
// (Figure 4.4).
type Fig44Point struct {
	Lambda float64
	// Relevance is the mean aggregated probability of the selected
	// interpretations; Novelty is 1 − mean pairwise similarity.
	Relevance float64
	Novelty   float64
}

// Fig4_4 sweeps λ and reports the relevance/novelty balance of the
// diversified top-k.
func Fig4_4(env *Env, intents []datagen.Intent, lambdas []float64, k int) ([]Fig44Point, *Table, error) {
	model := divqModel(env)
	table := &Table{
		Title:   fmt.Sprintf("Figure 4.4 (%s): relevance vs novelty across λ", env.Name),
		Headers: []string{"lambda", "relevance", "novelty", "n"},
	}
	var points []Fig44Point
	for _, lambda := range lambdas {
		var rels, novs []float64
		for _, in := range intents {
			ranked, err := rankedFor(env, model, in, 25)
			if err != nil {
				return nil, nil, err
			}
			if len(ranked) < 3 {
				continue
			}
			kk := k
			if kk > len(ranked) {
				kk = len(ranked)
			}
			div := divq.Diversify(ranked, divq.Config{Lambda: lambda, K: kk})
			rel := 0.0
			for _, s := range div {
				rel += s.Prob
			}
			simSum, simCnt := 0.0, 0
			for i := 0; i < len(div); i++ {
				for j := i + 1; j < len(div); j++ {
					simSum += divq.Similarity(div[i].Q, div[j].Q)
					simCnt++
				}
			}
			nov := 1.0
			if simCnt > 0 {
				nov = 1 - simSum/float64(simCnt)
			}
			rels = append(rels, rel)
			novs = append(novs, nov)
		}
		p := Fig44Point{Lambda: lambda, Relevance: metrics.Mean(rels), Novelty: metrics.Mean(novs)}
		points = append(points, p)
		table.AddRow(lambda, p.Relevance, p.Novelty, len(rels))
	}
	return points, table, nil
}

// AblationDivqEarlyStop measures the wall-clock effect of the
// score-upper-bound early stop of Algorithm 4.1 (identical output,
// different scan cost).
func AblationDivqEarlyStop(env *Env, intents []datagen.Intent, k int, lambda float64) (*Table, error) {
	model := divqModel(env)
	var withStop, withoutStop time.Duration
	queries := 0
	for _, in := range intents {
		ranked, err := rankedFor(env, model, in, 25)
		if err != nil {
			return nil, err
		}
		if len(ranked) < 3 {
			continue
		}
		queries++
		start := time.Now()
		a := divq.Diversify(ranked, divq.Config{Lambda: lambda, K: k})
		withStop += time.Since(start)
		start = time.Now()
		b := divq.Diversify(ranked, divq.Config{Lambda: lambda, K: k, DisableEarlyStop: true})
		withoutStop += time.Since(start)
		if len(a) != len(b) {
			return nil, fmt.Errorf("expt: early stop changed the result length")
		}
		for i := range a {
			if a[i].Q.Key() != b[i].Q.Key() {
				return nil, fmt.Errorf("expt: early stop changed the result at %d", i)
			}
		}
	}
	t := &Table{
		Title:   fmt.Sprintf("Ablation (%s): DivQ early stop (identical output)", env.Name),
		Headers: []string{"variant", "total time", "queries"},
	}
	t.AddRow("with early stop", withStop.Round(time.Microsecond).String(), queries)
	t.AddRow("full scan", withoutStop.Round(time.Microsecond).String(), queries)
	return t, nil
}

// PickAmbiguousIntents keeps the intents whose top-10 interpretation
// probabilities have the highest entropy (the ambiguity filter of
// Section 4.6.1), returning up to n of them.
func PickAmbiguousIntents(env *Env, intents []datagen.Intent, n int) ([]datagen.Intent, error) {
	model := divqModel(env)
	type scored struct {
		in      datagen.Intent
		entropy float64
	}
	var all []scored
	for _, in := range intents {
		ranked, err := rankedFor(env, model, in, 10)
		if err != nil {
			return nil, err
		}
		if len(ranked) < 2 {
			continue
		}
		weights := make([]float64, len(ranked))
		for i, s := range ranked {
			weights[i] = s.Score
		}
		all = append(all, scored{in: in, entropy: prob.NormalizedEntropy(weights)})
	}
	// Selection sort by descending entropy (n is small).
	var out []datagen.Intent
	used := make([]bool, len(all))
	for len(out) < n && len(out) < len(all) {
		best := -1
		for i, s := range all {
			if used[i] {
				continue
			}
			if best < 0 || s.entropy > all[best].entropy {
				best = i
			}
		}
		used[best] = true
		out = append(out, all[best].in)
	}
	return out, nil
}
