# Developer entry points. CI runs the same targets, so local and CI
# behaviour cannot drift: the CI test job is exactly `make check`, the
# lint job `make lint`, the fuzz-smoke job `make fuzz-smoke`, and the
# bench job `make bench-quick bench-guard`.

GO ?= go

.PHONY: build test race vet fmt lint staticcheck fuzz fuzz-smoke \
	bench bench-quick bench-exec bench-mut bench-dur bench-load \
	bench-adm bench-qc bench-shard bench-guard loadtest golden check cover \
	obs-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -shuffle=on randomises test (and subtest) execution order, so
# accidental inter-test state dependencies surface in CI instead of in
# the field; the seed is printed on failure for reproduction.
race:
	$(GO) test -race -shuffle=on ./...

vet:
	$(GO) vet ./...

# fmt fails when any file is not gofmt-clean (the lint gate; run
# `gofmt -w .` to fix).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# staticcheck runs if the binary is installed, and is a no-op otherwise
# (CI installs it; local runs stay dependency-free).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi

lint: fmt vet staticcheck

# fuzz gives every fuzz target a longer budget for local sessions;
# fuzz-smoke is the ~20s-per-target leg CI runs on every push.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzNormalizeKeywords -fuzztime 30s ./internal/query
	$(GO) test -run '^$$' -fuzz FuzzApplyMutations -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 30s ./internal/durable

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzNormalizeKeywords -fuzztime 20s ./internal/query
	$(GO) test -run '^$$' -fuzz FuzzApplyMutations -fuzztime 20s .
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 20s ./internal/durable

# bench writes the pipeline grid, the executor legs, the mutation legs,
# and the durability legs to BENCH_*.json — the perf-trajectory
# artifacts CI archives on every run.
bench:
	$(GO) run ./cmd/bench -out BENCH_pipeline.json -exec-out BENCH_executor.json -mut-out BENCH_mutations.json -dur-out BENCH_durability.json

bench-quick:
	$(GO) run ./cmd/bench -quick -out BENCH_pipeline.json -exec-out BENCH_executor.json -mut-out BENCH_mutations.json -dur-out BENCH_durability.json

# bench-exec / bench-mut / bench-dur measure one grid in isolation.
bench-exec:
	$(GO) run ./cmd/bench -only executor -exec-out BENCH_executor.json

bench-mut:
	$(GO) run ./cmd/bench -only mutate -mut-out BENCH_mutations.json

bench-dur:
	$(GO) run ./cmd/bench -only durable -dur-out BENCH_durability.json

# bench-load runs the serving-path load grid (saturation ramp, open
# loop at half the knee, 8x oversubscription against the admission
# gate) on a ~1M-row dataset. It takes minutes at full size and is
# therefore not part of `make bench`; CI runs the -quick variant.
bench-load:
	$(GO) run ./cmd/bench -only load -load-out BENCH_load.json

# bench-adm runs the adaptive-admission grid (static gate hand-placed
# at the measured knee vs the AIMD governor discovering it vs no gate,
# each 8x-oversubscribed) on a ~1M-row dataset. Like bench-load it
# takes minutes and is not part of `make bench`; CI runs -quick.
bench-adm:
	$(GO) run ./cmd/bench -only admission -adm-out BENCH_admission.json

# bench-qc runs the answer-cache grid (a Zipf-skewed repeated-query
# stream over real HTTP, cache-off vs the engine-lifetime qcache) on a
# ~1M-row dataset. Like bench-load it takes minutes and is not part of
# `make bench`; CI runs -quick.
bench-qc:
	$(GO) run ./cmd/bench -only qcache -qc-out BENCH_qcache.json

# bench-shard runs the sharding grid (single-process serving vs the
# N-shard scatter-gather coordinator over identical data and ops) on a
# ~1M-row dataset. The speedup_vs_1shard ratio needs free cores to
# exceed 1 (docs/sharding.md); like bench-load it takes minutes and is
# not part of `make bench`; CI runs -quick.
bench-shard:
	$(GO) run ./cmd/bench -only shard -shard-out BENCH_shard.json

# loadtest is an interactive closed-loop run against an in-process
# server; see cmd/loadtest -help for open-loop, saturation, and
# external-server modes.
loadtest:
	$(GO) run ./cmd/loadtest

# bench-guard re-measures the executor, mutation, and durability grids
# and fails when a tracked speedup (postings-vs-scan, apply-vs-rebuild,
# recover-vs-build) regressed >25% vs the committed baselines. Speedups
# are within-run ratios, so the guard transfers across machines; the
# pipeline grid is excluded because its parallel speedups depend on the
# host's core count.
bench-guard:
	cp BENCH_executor.json /tmp/bench_base_executor.json
	cp BENCH_mutations.json /tmp/bench_base_mutations.json
	cp BENCH_durability.json /tmp/bench_base_durability.json
	$(GO) run ./cmd/bench -only executor,mutate,durable \
		-compare /tmp/bench_base_executor.json,/tmp/bench_base_mutations.json,/tmp/bench_base_durability.json -threshold 0.25

# golden regenerates testdata/golden after an intentional ranking change.
# Plain `make test` fails if golden files drift without this.
golden:
	$(GO) test -run TestGolden . -update

# cover enforces a coverage floor on the control-plane packages whose
# correctness is all edge cases: the admission governor, the metrics
# histograms, and the answer cache (admission, eviction, invalidation,
# persistence). 85% is a floor, not a target — new branches in these
# packages arrive with tests or fail CI.
cover:
	@for pkg in internal/admission internal/metrics internal/qcache; do \
		$(GO) test -coverprofile=/tmp/cover_gate.out ./$$pkg >/dev/null || exit 1; \
		pct=$$($(GO) tool cover -func=/tmp/cover_gate.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
		echo "$$pkg coverage: $$pct%"; \
		awk -v p="$$pct" 'BEGIN { exit (p+0 < 85) ? 1 : 0 }' || \
			{ echo "FAIL: $$pkg coverage $$pct% is below the 85% floor"; exit 1; }; \
	done

# obs-smoke exercises the observability stack end-to-end against a
# real cmd/serve process (not httptest): tracing + query log +
# slow-query dump on, drive requests, scrape /metrics and assert the
# core families, SIGTERM-drain, then decode the query log through
# cmd/qlogcheck. The CI obs-smoke job is exactly this target.
obs-smoke:
	sh scripts/obs_smoke.sh

# check is the CI test job: vet + build + race-enabled tests.
check: vet build race
