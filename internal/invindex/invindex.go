// Package invindex implements the inverted index over the textual content
// of a relational database (Section 2.2.1, Figure 2.1) together with the
// term statistics consumed by the probabilistic interpretation model
// (Section 3.6.2) and by the TF-IDF baselines (Section 2.2.4):
//
//   - attribute-granularity postings: term → {table.column} with counts,
//   - tuple-granularity postings: term → {table.column.row},
//   - per-attribute unigram statistics: term frequency, vocabulary size,
//     total token count (for ATF, Equation 3.8),
//   - document frequency / inverse document frequency per attribute, where
//     a "document" is one attribute value of one tuple,
//   - pairwise co-occurrence counts used by DivQ's co-occurrence-aware
//     relevance model (Equation 4.2), and
//   - schema-term matching (keywords against table and column names).
//
// The index is built once from a relstore.Database in a pre-processing step
// and is immutable afterwards, mirroring the offline index-construction
// phase of the thesis systems.
package invindex

import (
	"math"
	"sort"
	"strings"

	"repro/internal/relstore"
)

// AttrRef names one textual attribute of the database.
type AttrRef struct {
	Table  string
	Column string
}

// String renders the reference as "table.column".
func (a AttrRef) String() string { return a.Table + "." + a.Column }

// Posting records the occurrences of a term inside one attribute.
type Posting struct {
	Attr AttrRef
	// Count is the total number of occurrences of the term across all
	// values of the attribute.
	Count int
	// DocCount is the number of tuples whose attribute value contains the
	// term at least once (the attribute-level document frequency).
	DocCount int
	// Rows lists the RowIDs of the tuples containing the term, ascending.
	Rows []int
}

// attrStats aggregates the unigram statistics of one attribute.
type attrStats struct {
	totalTokens int
	vocabulary  int
	docs        int // number of tuples (attribute values)
	termCount   map[string]int
	docCount    map[string]int
}

// Index is an immutable inverted index over a database.
type Index struct {
	db *relstore.Database

	// postings: term -> attr key -> posting (attr key = "table.column").
	postings map[string]map[string]*Posting
	stats    map[string]*attrStats // attr key -> stats
	attrs    []AttrRef             // all indexed attributes, stable order

	// schemaTerms: token -> schema elements whose name contains the token.
	schemaTables  map[string][]string
	schemaColumns map[string][]AttrRef

	// terms is the sorted dictionary of every distinct indexed term,
	// built once so prefix lookups never re-scan the data.
	terms []string

	totalDocs int
}

// Build constructs the inverted index over every indexed (textual) column
// of every table in the database.
func Build(db *relstore.Database) *Index {
	ix := &Index{
		db:            db,
		postings:      make(map[string]map[string]*Posting),
		stats:         make(map[string]*attrStats),
		schemaTables:  make(map[string][]string),
		schemaColumns: make(map[string][]AttrRef),
	}
	for _, t := range db.Tables() {
		for _, tok := range relstore.Tokenize(t.Schema.Name) {
			ix.schemaTables[tok] = append(ix.schemaTables[tok], t.Schema.Name)
		}
		for ci, col := range t.Schema.Columns {
			if !col.Indexed {
				continue
			}
			attr := AttrRef{Table: t.Schema.Name, Column: col.Name}
			key := attr.String()
			ix.attrs = append(ix.attrs, attr)
			st := &attrStats{termCount: make(map[string]int), docCount: make(map[string]int)}
			ix.stats[key] = st
			for _, tok := range relstore.Tokenize(col.Name) {
				ix.schemaColumns[tok] = append(ix.schemaColumns[tok], attr)
			}
			for _, row := range t.Rows() {
				if !t.Live(row.RowID) {
					continue
				}
				toks := relstore.Tokenize(row.Values[ci])
				st.totalTokens += len(toks)
				st.docs++
				seen := make(map[string]bool, len(toks))
				for _, tok := range toks {
					st.termCount[tok]++
					pmap := ix.postings[tok]
					if pmap == nil {
						pmap = make(map[string]*Posting)
						ix.postings[tok] = pmap
					}
					p := pmap[key]
					if p == nil {
						p = &Posting{Attr: attr}
						pmap[key] = p
					}
					p.Count++
					if !seen[tok] {
						seen[tok] = true
						st.docCount[tok]++
						p.DocCount++
						p.Rows = append(p.Rows, row.RowID)
					}
				}
				ix.totalDocs++
			}
			st.vocabulary = len(st.termCount)
		}
	}
	ix.terms = make([]string, 0, len(ix.postings))
	for term := range ix.postings {
		ix.terms = append(ix.terms, term)
	}
	sort.Strings(ix.terms)
	return ix
}

// Database returns the database the index was built over.
func (ix *Index) Database() *relstore.Database { return ix.db }

// Attributes returns every indexed attribute in a stable order.
func (ix *Index) Attributes() []AttrRef {
	out := make([]AttrRef, len(ix.attrs))
	copy(out, ix.attrs)
	return out
}

// Lookup returns the postings of a term across all attributes, sorted by
// attribute key for determinism. The term is lower-cased before lookup.
func (ix *Index) Lookup(term string) []Posting {
	pmap := ix.postings[normalize(term)]
	if pmap == nil {
		return nil
	}
	keys := make([]string, 0, len(pmap))
	for k := range pmap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Posting, 0, len(keys))
	for _, k := range keys {
		out = append(out, *pmap[k])
	}
	return out
}

// TermsWithPrefix returns up to limit distinct indexed terms starting with
// prefix, in lexicographic order (limit <= 0 means unlimited). It serves
// from the sorted term dictionary by binary search, so a lookup costs
// O(log |V| + answer) instead of re-scanning every indexed row.
func (ix *Index) TermsWithPrefix(prefix string, limit int) []string {
	start := sort.SearchStrings(ix.terms, prefix)
	var out []string
	for i := start; i < len(ix.terms); i++ {
		if !strings.HasPrefix(ix.terms[i], prefix) {
			break
		}
		out = append(out, ix.terms[i])
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// NumTerms returns the size of the term dictionary.
func (ix *Index) NumTerms() int { return len(ix.terms) }

// Contains reports whether the term occurs anywhere in the database.
func (ix *Index) Contains(term string) bool {
	_, ok := ix.postings[normalize(term)]
	return ok
}

// TermCount returns the raw number of occurrences of term in attr.
func (ix *Index) TermCount(term string, attr AttrRef) int {
	st := ix.stats[attr.String()]
	if st == nil {
		return 0
	}
	return st.termCount[normalize(term)]
}

// DocCount returns the number of tuples of attr whose value contains term.
func (ix *Index) DocCount(term string, attr AttrRef) int {
	st := ix.stats[attr.String()]
	if st == nil {
		return 0
	}
	return st.docCount[normalize(term)]
}

// AttrTokens returns the total number of tokens stored in attr.
func (ix *Index) AttrTokens(attr AttrRef) int {
	st := ix.stats[attr.String()]
	if st == nil {
		return 0
	}
	return st.totalTokens
}

// AttrVocabulary returns the number of distinct terms stored in attr.
func (ix *Index) AttrVocabulary(attr AttrRef) int {
	st := ix.stats[attr.String()]
	if st == nil {
		return 0
	}
	return st.vocabulary
}

// AttrDocs returns the number of tuples (attribute values) of attr.
func (ix *Index) AttrDocs(attr AttrRef) int {
	st := ix.stats[attr.String()]
	if st == nil {
		return 0
	}
	return st.docs
}

// TotalDocs returns the total number of attribute values indexed.
func (ix *Index) TotalDocs() int { return ix.totalDocs }

// ATF is the Attribute Term Frequency of Equation 3.8: a smoothed estimate
// of P(σ_{k∈A}(Table):k | σ_{?∈A}(Table)) — the probability that the random
// process of picking an instance of A and picking a keyword from it yields
// k. We use Laplace (add-alpha) smoothing over the attribute's unigram
// distribution:
//
//	ATF(k, A) = (count(k, A) + alpha) / (tokens(A) + alpha * (|V_A| + 1))
//
// which is the maximum-likelihood model of the thesis with its smoothing
// parameter alpha (typically 1). The +1 in the vocabulary term reserves
// probability mass for unseen keywords so that ATF is a proper
// distribution over V_A ∪ {unseen}.
func (ix *Index) ATF(term string, attr AttrRef, alpha float64) float64 {
	st := ix.stats[attr.String()]
	if st == nil {
		return 0
	}
	c := float64(st.termCount[normalize(term)])
	return (c + alpha) / (float64(st.totalTokens) + alpha*float64(st.vocabulary+1))
}

// TF returns the normalised term frequency count(k,A)/tokens(A).
func (ix *Index) TF(term string, attr AttrRef) float64 {
	st := ix.stats[attr.String()]
	if st == nil || st.totalTokens == 0 {
		return 0
	}
	return float64(st.termCount[normalize(term)]) / float64(st.totalTokens)
}

// IDF returns the inverse document frequency of term within attr,
// ln(1 + docs(A)/(df+1)), the selectivity factor of Section 2.2.4.
func (ix *Index) IDF(term string, attr AttrRef) float64 {
	st := ix.stats[attr.String()]
	if st == nil {
		return 0
	}
	df := st.docCount[normalize(term)]
	return math.Log(1 + float64(st.docs)/float64(df+1))
}

// GlobalIDF returns an IDF over all indexed attribute values, used by the
// Lucene-style SQAK baseline: 1 + ln(N/(df+1)).
func (ix *Index) GlobalIDF(term string) float64 {
	df := 0
	for _, p := range ix.postings[normalize(term)] {
		df += p.DocCount
	}
	return 1 + math.Log(float64(ix.totalDocs+1)/float64(df+1))
}

// MatchTables returns the tables whose name contains the term as a token
// (schema-term matching, Section 2.2.7).
func (ix *Index) MatchTables(term string) []string {
	out := ix.schemaTables[normalize(term)]
	cp := make([]string, len(out))
	copy(cp, out)
	sort.Strings(cp)
	return cp
}

// MatchColumns returns the attributes whose column name contains the term
// as a token.
func (ix *Index) MatchColumns(term string) []AttrRef {
	out := ix.schemaColumns[normalize(term)]
	cp := make([]AttrRef, len(out))
	copy(cp, out)
	sort.Slice(cp, func(i, j int) bool { return cp[i].String() < cp[j].String() })
	return cp
}

// CoOccurrence returns, for a bag of keywords, the number of tuples of attr
// whose value contains every keyword of the bag, and the number of tuples
// of attr overall. This feeds the joint probability
// P(A:[k1..kn] | A) of DivQ (Equation 4.2): when keywords co-occur in one
// attribute (e.g. first and last name in "name"), the joint probability
// exceeds the product of the marginals, so interpretations binding several
// keywords to the same attribute are promoted.
func (ix *Index) CoOccurrence(keywords []string, attr AttrRef) (matching, total int) {
	st := ix.stats[attr.String()]
	if st == nil {
		return 0, 0
	}
	total = st.docs
	if len(keywords) == 0 {
		return 0, total
	}
	t := ix.db.Table(attr.Table)
	if t == nil {
		return 0, total
	}
	matching = len(t.SelectContains(attr.Column, keywords))
	return matching, total
}

// PhrasePairScore estimates how strongly two keywords form a phrase
// (the query segmentation signal of Section 2.2.1): the maximum, over
// attributes containing both, of the fraction of the rarer keyword's
// occurrences that co-occur with the other in one attribute value.
// 1 means the keywords always appear together ("tom" "hanks"); 0 means
// they never share a value.
func (ix *Index) PhrasePairScore(k1, k2 string) float64 {
	a, b := normalize(k1), normalize(k2)
	if a == "" || b == "" || a == b {
		return 0
	}
	best := 0.0
	for _, p1 := range ix.Lookup(a) {
		df1 := p1.DocCount
		df2 := ix.DocCount(b, p1.Attr)
		if df1 == 0 || df2 == 0 {
			continue
		}
		co, _ := ix.CoOccurrence([]string{a, b}, p1.Attr)
		min := df1
		if df2 < min {
			min = df2
		}
		if s := float64(co) / float64(min); s > best {
			best = s
		}
	}
	return best
}

func normalize(term string) string {
	toks := relstore.Tokenize(term)
	if len(toks) == 0 {
		return ""
	}
	return toks[0]
}
