package expt

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/freeq"
	"repro/internal/invindex"
	"repro/internal/metrics"
	"repro/internal/ontology"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/schemagraph"
)

// FreebaseEnv bundles the very large flat database with its ontology
// layer (Chapter 5).
type FreebaseEnv struct {
	*Env
	FD   *datagen.FreebaseData
	CS   *datagen.ConceptSpace
	Onto *ontology.Ontology
}

// NewFreebaseEnv builds the synthetic Freebase of the given scale and
// maps its tables onto the generated YAGO ontology (via the ground-truth
// concepts — the role YAGO+F plays for the real datasets).
func NewFreebaseEnv(domains, tablesPerDomain int, seed int64) (*FreebaseEnv, error) {
	cs := datagen.NewConceptSpace(40, 20, 120, seed)
	fd, err := datagen.Freebase(cs, datagen.FreebaseConfig{
		Domains: domains, TablesPerDomain: tablesPerDomain, RowsPerTable: 10, Seed: seed + 1,
	})
	if err != nil {
		return nil, err
	}
	ix := invindex.Build(fd.DB)
	g := schemagraph.FromDatabase(fd.DB)
	// Entity-centric construction: singleton and hub-link templates. The
	// schema is flat, so longer join paths explode combinatorially — the
	// very problem FreeQ addresses at the interaction level.
	cat := query.BuildCatalog(g, schemagraph.EnumerateOptions{MaxNodes: 2, MaxTrees: 100000})
	onto := datagen.YAGO(cs, datagen.YAGOConfig{Seed: seed + 2})
	freeq.MapConceptTables(onto, fd.ConceptOf)
	return &FreebaseEnv{
		Env:  &Env{Name: "freebase", DB: fd.DB, IX: ix, Graph: g, Cat: cat},
		FD:   fd,
		CS:   cs,
		Onto: onto,
	}, nil
}

// FreebaseIntent is one workload query over the Freebase environment.
type FreebaseIntent struct {
	Keywords []string
	Table    string // intended table
	// Complexity is the number of keywords (the query-complexity classes
	// of Table 5.2 / Figure 5.4).
	Complexity int
}

// FreebaseWorkload samples entity-centric intents: 1–3 tokens of one
// row's textual attributes of a random table.
func FreebaseWorkload(env *FreebaseEnv, queries int, seed int64) []FreebaseIntent {
	rng := rand.New(rand.NewSource(seed))
	tables := make([]string, 0, len(env.FD.ConceptOf))
	for t := range env.FD.ConceptOf {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	var out []FreebaseIntent
	for len(out) < queries {
		table := tables[rng.Intn(len(tables))]
		tb := env.DB.Table(table)
		if tb == nil || tb.Len() == 0 {
			continue
		}
		row, _ := tb.Row(rng.Intn(tb.Len()))
		nameIdx := tb.Schema.ColumnIndex("name")
		notesIdx := tb.Schema.ColumnIndex("notes")
		nameToks := relstore.Tokenize(row.Values[nameIdx])
		notesToks := relstore.Tokenize(row.Values[notesIdx])
		complexity := 1 + rng.Intn(3)
		var keywords []string
		seen := map[string]bool{}
		push := func(tok string) {
			if tok != "" && !seen[tok] && len(tok) >= 3 {
				seen[tok] = true
				keywords = append(keywords, tok)
			}
		}
		push(nameToks[rng.Intn(len(nameToks))])
		if complexity >= 2 && len(nameToks) > 1 {
			push(nameToks[(rng.Intn(len(nameToks)))])
		}
		if complexity >= 3 && len(notesToks) > 0 {
			push(notesToks[rng.Intn(len(notesToks))])
		}
		if len(keywords) == 0 {
			continue
		}
		out = append(out, FreebaseIntent{Keywords: keywords, Table: table, Complexity: len(keywords)})
	}
	return out
}

// resolveFreebaseIntent constructs the ground-truth interpretation
// directly: every keyword bound to the intended table's name (or notes)
// attribute on the table's singleton template. Direct construction
// avoids materialising the full interpretation space per intent, which
// is prohibitive at the 7,000-table scale.
func resolveFreebaseIntent(env *FreebaseEnv, in FreebaseIntent) (*query.Interpretation, bool) {
	var tpl *query.Template
	for _, t := range env.Cat.Templates {
		if t.Size() == 1 && t.Tree.Tables[0] == in.Table {
			tpl = t
			break
		}
	}
	if tpl == nil {
		return nil, false
	}
	bindings := make([]query.Binding, 0, len(in.Keywords))
	for pos, kw := range in.Keywords {
		var attr invindex.AttrRef
		switch {
		case env.IX.TermCount(kw, invindex.AttrRef{Table: in.Table, Column: "name"}) > 0:
			attr = invindex.AttrRef{Table: in.Table, Column: "name"}
		case env.IX.TermCount(kw, invindex.AttrRef{Table: in.Table, Column: "notes"}) > 0:
			attr = invindex.AttrRef{Table: in.Table, Column: "notes"}
		default:
			return nil, false
		}
		bindings = append(bindings, query.Binding{
			KI: query.KeywordInterpretation{
				Pos: pos, Keyword: kw, Kind: query.KindValue, Attr: attr,
			},
			Occ: 0,
		})
	}
	return query.NewInterpretation(in.Keywords, tpl, bindings), true
}

// Table5_1 prints a worked FreeQ construction transcript: the sequence of
// ontology-based QCOs for one query (Table 5.1).
func Table5_1(env *FreebaseEnv, in FreebaseIntent) (*Table, error) {
	model := env.Model(prob.Config{})
	c := env.Candidates(in.Keywords)
	intended, ok := resolveFreebaseIntent(env, in)
	if !ok {
		return nil, fmt.Errorf("expt: intent %v unresolvable", in.Keywords)
	}
	sess, err := freeq.NewSession(model, c, env.Onto, freeq.Config{StopAtRemaining: 1})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Table 5.1: FreeQ construction transcript for %v", in.Keywords),
		Headers: []string{"step", "question", "answer", "space size"},
	}
	step := 0
	for !sess.Done() && step < 40 {
		o, ok := sess.NextOption()
		if !ok {
			break
		}
		step++
		answer := "reject"
		if acceptsOption(intended, o) {
			answer = "accept"
			sess.Accept(o)
		} else {
			sess.Reject(o)
		}
		t.AddRow(step, o.Describe(), answer, sess.SpaceSize())
	}
	t.Notes = append(t.Notes, fmt.Sprintf("final candidates: %d", len(sess.Remaining())))
	return t, nil
}

func acceptsOption(intended *query.Interpretation, o freeq.Option) bool {
	for _, b := range intended.Bindings {
		if b.KI.Pos == o.Pos {
			return o.Covers(b.KI)
		}
	}
	return false
}

// Table52Row summarises one complexity class of the workload.
type Table52Row struct {
	Complexity      int
	Queries         int
	AvgCandidates   float64
	AvgSpaceSize    float64
	MaxCandidateSet int
}

// Table5_2 reports the complexity of the Freebase keyword workload
// (Table 5.2): per query-complexity class, the candidate-set sizes and
// the binding-combination space.
func Table5_2(env *FreebaseEnv, intents []FreebaseIntent) ([]Table52Row, *Table) {
	agg := map[int]*Table52Row{}
	for _, in := range intents {
		c := env.Candidates(in.Keywords)
		row := agg[in.Complexity]
		if row == nil {
			row = &Table52Row{Complexity: in.Complexity}
			agg[in.Complexity] = row
		}
		row.Queries++
		total := 0
		for _, kis := range c.PerKeyword {
			total += len(kis)
			if len(kis) > row.MaxCandidateSet {
				row.MaxCandidateSet = len(kis)
			}
		}
		row.AvgCandidates += float64(total) / float64(len(c.PerKeyword))
		row.AvgSpaceSize += float64(c.SpaceSize())
	}
	table := &Table{
		Title:   "Table 5.2: complexity of keyword queries over Freebase",
		Headers: []string{"keywords", "queries", "avg candidates/keyword", "avg space", "max candidate set"},
	}
	var rows []Table52Row
	for k := 1; k <= 5; k++ {
		row := agg[k]
		if row == nil {
			continue
		}
		row.AvgCandidates /= float64(row.Queries)
		row.AvgSpaceSize /= float64(row.Queries)
		rows = append(rows, *row)
		table.AddRow(k, row.Queries, row.AvgCandidates,
			fmt.Sprintf("%.0f", row.AvgSpaceSize), row.MaxCandidateSet)
	}
	return rows, table
}

// Table53Row describes one generated ontology scale.
type Table53Row struct {
	Depth, Branch int
	Classes       int
	Leaves        int
	MappedTables  int
}

// Table5_3 generates ontologies of different sizes over the same concept
// space and reports their shapes (Table 5.3).
func Table5_3(env *FreebaseEnv, configs []datagen.YAGOConfig) ([]Table53Row, *Table) {
	table := &Table{
		Title:   "Table 5.3: ontologies of different size",
		Headers: []string{"depth", "branch", "classes", "leaves", "mapped tables"},
	}
	var rows []Table53Row
	for _, cfg := range configs {
		o := datagen.YAGO(env.CS, cfg)
		mapped := freeq.MapConceptTables(o, env.FD.ConceptOf)
		row := Table53Row{
			Depth: cfg.BackboneDepth, Branch: cfg.BackboneBranch,
			Classes: o.NumClasses(), Leaves: len(o.Leaves()), MappedTables: mapped,
		}
		rows = append(rows, row)
		table.AddRow(row.Depth, row.Branch, row.Classes, row.Leaves, row.MappedTables)
	}
	return rows, table
}

// Fig52Row is one schema-size cell of Figure 5.2.
type Fig52Row struct {
	Tables int
	// FirstOptionEfficiency of the first FreeQ QCO vs the first
	// attribute-level option.
	OntologyEfficiency  float64
	AttributeEfficiency float64
	// Interaction costs of the full constructions.
	OntologySteps  float64
	AttributeSteps float64
}

// Fig5_2 sweeps the schema size and reports QCO efficiency and
// interaction cost for ontology-based vs attribute-level QCOs
// (Figure 5.2).
func Fig5_2(domainCounts []int, tablesPerDomain, queriesPer int, seed int64) ([]Fig52Row, *Table, error) {
	table := &Table{
		Title:   "Figure 5.2: QCO efficiency and interaction cost vs schema size",
		Headers: []string{"tables", "eff(onto)", "eff(attr)", "steps(onto)", "steps(attr)", "n"},
	}
	var rows []Fig52Row
	for _, domains := range domainCounts {
		env, err := NewFreebaseEnv(domains, tablesPerDomain, seed)
		if err != nil {
			return nil, nil, err
		}
		model := env.Model(prob.Config{})
		intents := FreebaseWorkload(env, queriesPer*3, seed+7)
		var effO, effA, stepsO, stepsA []float64
		for _, in := range intents {
			if in.Complexity != 1 {
				continue
			}
			c := env.Candidates(in.Keywords)
			intended, ok := resolveFreebaseIntent(env, in)
			if !ok {
				continue
			}
			fsess, err := freeq.NewSession(model, c, env.Onto, freeq.Config{StopAtRemaining: 1})
			if err != nil {
				continue
			}
			if o, ok := fsess.NextOption(); ok {
				effO = append(effO, optionEfficiency(model, c, o))
			}
			fres, err := freeq.RunConstruction(fsess, intended)
			if err != nil {
				continue
			}
			isess, err := core.NewSession(model, c, core.SessionConfig{StopAtRemaining: 1})
			if err != nil {
				continue
			}
			if opt, ok := isess.NextOption(); ok {
				effA = append(effA, singleOptionEfficiency(model, c, opt))
			}
			ires, err := core.RunConstruction(isess, core.NewSimulatedUser(intended))
			if err != nil {
				continue
			}
			stepsO = append(stepsO, float64(fres.Steps))
			stepsA = append(stepsA, float64(ires.Steps))
			if len(stepsO) >= queriesPer {
				break
			}
		}
		row := Fig52Row{
			Tables:              env.DB.NumTables(),
			OntologyEfficiency:  metrics.Mean(effO),
			AttributeEfficiency: metrics.Mean(effA),
			OntologySteps:       metrics.Mean(stepsO),
			AttributeSteps:      metrics.Mean(stepsA),
		}
		rows = append(rows, row)
		table.AddRow(row.Tables, row.OntologyEfficiency, row.AttributeEfficiency,
			row.OntologySteps, row.AttributeSteps, len(stepsO))
	}
	return rows, table, nil
}

// optionEfficiency computes the QCO efficiency of a FreeQ option: the
// acceptance probability mass of its covered interpretations for its
// keyword.
func optionEfficiency(model *prob.Model, c *query.Candidates, o freeq.Option) float64 {
	total, covered := 0.0, 0.0
	for _, ki := range c.PerKeyword[o.Pos] {
		m := model.KeywordProb(ki)
		total += m
		if o.Covers(ki) {
			covered += m
		}
	}
	if total <= 0 {
		return 0
	}
	return freeq.Efficiency(covered / total)
}

// singleOptionEfficiency computes the efficiency of an IQP attribute-level
// option over its keyword's candidates.
func singleOptionEfficiency(model *prob.Model, c *query.Candidates, opt query.Option) float64 {
	if len(opt.KIs) == 0 {
		return 0
	}
	pos := opt.KIs[0].Pos
	total, covered := 0.0, 0.0
	for _, ki := range c.PerKeyword[pos] {
		m := model.KeywordProb(ki)
		total += m
		for _, oki := range opt.KIs {
			if oki.Key() == ki.Key() {
				covered += m
			}
		}
	}
	if total <= 0 {
		return 0
	}
	return freeq.Efficiency(covered / total)
}

// Fig54Row is one complexity class of the Freebase construction
// comparison (Figure 5.4).
type Fig54Row struct {
	Complexity int
	FreeQSteps float64
	IQPSteps   float64
	N          int
}

// Fig55Row is the response-time counterpart (Figure 5.5).
type Fig55Row struct {
	Complexity    int
	FreeQPerStep  time.Duration
	N             int
	FreeQTotalRun time.Duration
}

// Fig5_4_5 runs the Freebase construction workload and reports both the
// interaction cost (Figure 5.4) and the per-step response time
// (Figure 5.5).
func Fig5_4_5(env *FreebaseEnv, intents []FreebaseIntent) ([]Fig54Row, []Fig55Row, *Table, *Table, error) {
	model := env.Model(prob.Config{})
	type agg struct {
		fsteps, isteps []float64
		ftime          time.Duration
		fstepsTotal    int
	}
	byC := map[int]*agg{}
	for _, in := range intents {
		c := env.Candidates(in.Keywords)
		intended, ok := resolveFreebaseIntent(env, in)
		if !ok {
			continue
		}
		fsess, err := freeq.NewSession(model, c, env.Onto, freeq.Config{StopAtRemaining: 5})
		if err != nil {
			continue
		}
		fres, err := freeq.RunConstruction(fsess, intended)
		if err != nil {
			continue
		}
		isess, err := core.NewSession(model, c, core.SessionConfig{StopAtRemaining: 5})
		if err != nil {
			continue
		}
		ires, err := core.RunConstruction(isess, core.NewSimulatedUser(intended))
		if err != nil {
			continue
		}
		a := byC[in.Complexity]
		if a == nil {
			a = &agg{}
			byC[in.Complexity] = a
		}
		a.fsteps = append(a.fsteps, float64(fres.Steps))
		a.isteps = append(a.isteps, float64(ires.Steps))
		a.ftime += fres.StepTime
		a.fstepsTotal += fres.Steps
	}
	t54 := &Table{
		Title:   "Figure 5.4: interaction cost of construction over Freebase",
		Headers: []string{"keywords", "FreeQ steps", "IQP steps", "n"},
	}
	t55 := &Table{
		Title:   "Figure 5.5: response time of construction over Freebase",
		Headers: []string{"keywords", "FreeQ time/step", "n"},
	}
	var rows54 []Fig54Row
	var rows55 []Fig55Row
	for k := 1; k <= 5; k++ {
		a := byC[k]
		if a == nil {
			continue
		}
		r54 := Fig54Row{Complexity: k, FreeQSteps: metrics.Mean(a.fsteps),
			IQPSteps: metrics.Mean(a.isteps), N: len(a.fsteps)}
		rows54 = append(rows54, r54)
		t54.AddRow(k, r54.FreeQSteps, r54.IQPSteps, r54.N)
		perStep := time.Duration(0)
		if a.fstepsTotal > 0 {
			perStep = a.ftime / time.Duration(a.fstepsTotal)
		}
		r55 := Fig55Row{Complexity: k, FreeQPerStep: perStep, N: len(a.fsteps), FreeQTotalRun: a.ftime}
		rows55 = append(rows55, r55)
		t55.AddRow(k, perStep.Round(time.Microsecond).String(), r55.N)
	}
	return rows54, rows55, t54, t55, nil
}

// AblationOntologyFanout sweeps the ontology branching factor and
// measures its effect on FreeQ interaction cost.
func AblationOntologyFanout(env *FreebaseEnv, intents []FreebaseIntent, branches []int, seed int64) (*Table, error) {
	table := &Table{
		Title:   "Ablation: ontology branching factor vs FreeQ interaction cost",
		Headers: []string{"branch", "classes", "avg steps", "n"},
	}
	model := env.Model(prob.Config{})
	for _, b := range branches {
		o := datagen.YAGO(env.CS, datagen.YAGOConfig{BackboneBranch: b, Seed: seed})
		freeq.MapConceptTables(o, env.FD.ConceptOf)
		var steps []float64
		for _, in := range intents {
			c := env.Candidates(in.Keywords)
			intended, ok := resolveFreebaseIntent(env, in)
			if !ok {
				continue
			}
			sess, err := freeq.NewSession(model, c, o, freeq.Config{StopAtRemaining: 5})
			if err != nil {
				continue
			}
			res, err := freeq.RunConstruction(sess, intended)
			if err != nil {
				continue
			}
			steps = append(steps, float64(res.Steps))
		}
		table.AddRow(b, o.NumClasses(), metrics.Mean(steps), len(steps))
	}
	return table, nil
}
