package expt

import (
	"fmt"
	"strings"

	"repro/internal/datagen"
	"repro/internal/invindex"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/schemagraph"
)

// Env bundles a database with its search infrastructure: inverted index,
// schema graph and template catalogue.
type Env struct {
	Name  string
	DB    *relstore.Database
	IX    *invindex.Index
	Graph *schemagraph.Graph
	Cat   *query.Catalog
}

// newEnv indexes a database and builds its catalogue.
func newEnv(name string, db *relstore.Database, maxJoinPath int) *Env {
	ix := invindex.Build(db)
	g := schemagraph.FromDatabase(db)
	cat := query.BuildCatalog(g, schemagraph.EnumerateOptions{MaxNodes: maxJoinPath})
	return &Env{Name: name, DB: db, IX: ix, Graph: g, Cat: cat}
}

// Scale selects dataset sizes for the harness: benchmarks use Small to
// stay fast; cmd/experiments uses Full for the headline numbers.
type Scale int

const (
	// Small is a fast configuration for tests and benchmarks.
	Small Scale = iota
	// Full is the configuration for the headline experiment runs.
	Full
)

// NewMovieEnv builds the IMDB-style environment (Section 3.8.1 uses a
// 7-table IMDB crawl; join-path length 4 gives 74 templates there — the
// template count here depends on the synthetic schema).
func NewMovieEnv(scale Scale, seed int64) (*Env, error) {
	cfg := datagen.IMDBConfig{Seed: seed}
	if scale == Full {
		cfg.Movies, cfg.Actors, cfg.Directors, cfg.Companies = 2000, 1200, 300, 120
	} else {
		cfg.Movies, cfg.Actors, cfg.Directors, cfg.Companies = 250, 150, 40, 20
	}
	db, err := datagen.IMDB(cfg)
	if err != nil {
		return nil, err
	}
	return newEnv("imdb", db, 4), nil
}

// NewMusicEnv builds the Lyrics-style environment (5 tables, chain
// schema). The join-path bound must admit the 5-table chain.
func NewMusicEnv(scale Scale, seed int64) (*Env, error) {
	cfg := datagen.LyricsConfig{Seed: seed}
	if scale == Full {
		cfg.Artists = 500
	} else {
		cfg.Artists = 80
	}
	db, err := datagen.Lyrics(cfg)
	if err != nil {
		return nil, err
	}
	return newEnv("lyrics", db, 5), nil
}

// Model builds the probabilistic model over the environment.
func (e *Env) Model(cfg prob.Config) *prob.Model {
	return prob.New(e.IX, e.Cat, cfg)
}

// Candidates generates keyword candidates against the environment.
func (e *Env) Candidates(keywords []string) *query.Candidates {
	return query.GenerateCandidates(e.IX, keywords, query.GenerateOptionsConfig{})
}

// Space materialises the complete interpretation space of a query.
func (e *Env) Space(c *query.Candidates, cap int) []*query.Interpretation {
	return query.GenerateComplete(c, e.Cat, query.GenerateConfig{MaxInterpretations: cap})
}

// ResolveIntent finds the complete interpretation matching the intent's
// ground-truth attribute assignment (smallest template first). ok=false
// when the intent is not expressible in the environment's template
// catalogue.
func (e *Env) ResolveIntent(in datagen.Intent, space []*query.Interpretation) (*query.Interpretation, bool) {
	for _, q := range space {
		if len(q.Bindings) != len(in.Keywords) {
			continue
		}
		ok := true
		for _, b := range q.Bindings {
			if b.KI.Kind != query.KindValue {
				ok = false
				break
			}
			if b.KI.Attr.String() != in.Attrs[b.KI.Pos] {
				ok = false
				break
			}
		}
		if ok {
			return q, true
		}
	}
	return nil, false
}

// AttrOf parses "table.column" into an attribute reference.
func AttrOf(s string) (invindex.AttrRef, error) {
	parts := strings.SplitN(s, ".", 2)
	if len(parts) != 2 {
		return invindex.AttrRef{}, fmt.Errorf("expt: bad attribute %q", s)
	}
	return invindex.AttrRef{Table: parts[0], Column: parts[1]}, nil
}

// IntentRelevance builds the simulated graded relevance assessment of the
// DivQ evaluation (Section 4.6.2): the intended interpretation scores 1;
// other interpretations earn the fraction of their keywords bound to the
// intended attributes (partial credit), so near-misses are graded rather
// than binary — the role of the averaged Likert scores in the thesis.
func IntentRelevance(in datagen.Intent) func(*query.Interpretation) float64 {
	return func(q *query.Interpretation) float64 {
		if len(q.Bindings) == 0 {
			return 0
		}
		hit := 0
		for _, b := range q.Bindings {
			if b.KI.Pos < len(in.Attrs) && b.KI.Kind == query.KindValue &&
				b.KI.Attr.String() == in.Attrs[b.KI.Pos] {
				hit++
			}
		}
		return float64(hit) / float64(len(in.Keywords))
	}
}
