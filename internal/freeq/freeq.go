// Package freeq implements FreeQ — scaling interactive query construction
// to very large databases (Chapter 5).
//
// On a schema of thousands of tables, the attribute-level query
// construction options of IQP become uninformative: a keyword such as
// "london" can occur in hundreds of attributes, and each single-attribute
// question eliminates only a sliver of the interpretation space. FreeQ
// constructs an abstract ontology layer over the database schema
// (Section 5.5.1) and asks questions at the class level — "Is «london» a
// Person?" — so one answer eliminates whole schema regions. Accepting a
// class option descends into its subclasses; rejecting it prunes the
// entire subtree (the efficient traversal of very large query
// interpretation spaces, Section 5.6).
//
// The chapter's quantitative notions are reproduced as follows:
//
//   - QCO efficiency (Section 5.5.2): the expected fraction of the
//     interpretation-space probability eliminated by evaluating one
//     option. For an option whose acceptance probability is p the
//     expected eliminated mass is 2·p·(1−p), maximised by balanced
//     options — exactly what ontology classes provide over big flat
//     schemas (reconstruction; the thesis text of §5.5.2 is available
//     only in summary form, see DESIGN.md).
//   - Interaction cost and response time per construction step
//     (Figures 5.4 and 5.5) are measured by RunConstruction.
package freeq

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/prob"
	"repro/internal/query"
)

// Config tunes a FreeQ session.
type Config struct {
	// StopAtRemaining ends construction when at most this many complete
	// interpretations remain (default 5, as in IQP).
	StopAtRemaining int
	// MaterializeAt materialises complete interpretations once the
	// product of per-keyword candidate-set sizes falls to this bound
	// (default 8): the incremental materialisation of Section 5.6.2.
	// While the space is larger, the session keeps asking class-level
	// QCOs; materialising too early degenerates FreeQ into attribute-
	// level IQP.
	MaterializeAt int
	// MaxTemplatesPerBinding caps template attachment (0 = unlimited).
	MaxTemplatesPerBinding int
}

func (c *Config) defaults() {
	if c.StopAtRemaining <= 0 {
		c.StopAtRemaining = 5
	}
	if c.MaterializeAt <= 0 {
		c.MaterializeAt = 8
	}
}

// Option is a FreeQ query construction option. Class options group all
// interpretations of one keyword under an ontology class subtree
// ("Is «london» a person?"); attribute options are the IQP-style
// single-interpretation refinements used below class granularity.
type Option struct {
	// Pos and Keyword identify the keyword the option refines.
	Pos     int
	Keyword string
	// Class is the ontology class ID, or -1 for an attribute-level option.
	Class     int
	ClassName string
	// KIs are the keyword interpretations the option covers. The option
	// subsumes an interpretation iff the interpretation binds the keyword
	// to one of these (OR semantics, unlike the AND semantics of
	// query.Option).
	KIs []query.KeywordInterpretation
}

// Describe renders the option as the question shown to the user.
func (o Option) Describe() string {
	if o.Class >= 0 {
		return fmt.Sprintf("is %q a %s?", o.Keyword, o.ClassName)
	}
	if len(o.KIs) == 1 {
		return o.KIs[0].Describe()
	}
	return fmt.Sprintf("%q refines to one of %d attributes", o.Keyword, len(o.KIs))
}

// Covers reports whether the option covers the given keyword
// interpretation.
func (o Option) Covers(ki query.KeywordInterpretation) bool {
	if ki.Pos != o.Pos {
		return false
	}
	key := ki.Key()
	for _, c := range o.KIs {
		if c.Key() == key {
			return true
		}
	}
	return false
}

// SubsumesInterpretation reports whether the option subsumes a complete
// interpretation: the interpretation's binding for the option's keyword
// is covered.
func (o Option) SubsumesInterpretation(q *query.Interpretation) bool {
	for _, b := range q.Bindings {
		if b.KI.Pos == o.Pos {
			return o.Covers(b.KI)
		}
	}
	return false
}

// Efficiency is the QCO efficiency measure of Section 5.5.2 as
// reconstructed above: the expected probability mass eliminated by
// evaluating an option with acceptance probability p.
func Efficiency(p float64) float64 { return 2 * p * (1 - p) }

// keywordState tracks the remaining interpretation candidates of one
// keyword and the ontology frontier still to be asked about.
type keywordState struct {
	pos     int
	keyword string
	// allowed is the surviving candidate set (keyed by KI key).
	allowed map[string]query.KeywordInterpretation
	// frontier holds the class IDs that may still be asked about.
	frontier []int
	// askedAttrs records attribute-level options already decided.
	askedAttrs map[string]bool
}

// Session is an interactive FreeQ construction over a very large schema.
type Session struct {
	scorer core.Scorer
	cands  *query.Candidates
	onto   *ontology.Ontology
	cfg    Config

	states []*keywordState
	// complete is non-nil once interpretations are materialised.
	complete []prob.Scored
	steps    int
	// stepTime accumulates option-generation time (Figure 5.5).
	stepTime time.Duration
	// coTables caches template co-occurrence for semi-join pruning.
	coTables map[string]map[string]bool
	// subtreeTables caches, per ontology class, the set of tables mapped
	// within its subtree.
	subtreeTables map[int]map[string]bool
}

// NewSession starts a FreeQ session. The ontology must have database
// tables mapped to its classes (MapTables / the YAGO+F structure). It is
// the context-free convenience form of NewSessionContext.
func NewSession(scorer core.Scorer, cands *query.Candidates, onto *ontology.Ontology, cfg Config) (*Session, error) {
	return NewSessionContext(context.Background(), scorer, cands, onto, cfg)
}

// NewSessionContext is NewSession with cancellation of the initial
// pruning/materialisation work.
func NewSessionContext(ctx context.Context, scorer core.Scorer, cands *query.Candidates, onto *ontology.Ontology, cfg Config) (*Session, error) {
	cfg.defaults()
	matched := cands.MatchedPositions()
	if len(matched) == 0 {
		return nil, fmt.Errorf("freeq: no keyword of the query matches the database")
	}
	s := &Session{scorer: scorer, cands: cands, onto: onto, cfg: cfg}
	for _, pos := range matched {
		st := &keywordState{
			pos:        pos,
			keyword:    cands.Keywords[pos],
			allowed:    make(map[string]query.KeywordInterpretation),
			askedAttrs: make(map[string]bool),
		}
		for _, ki := range cands.PerKeyword[pos] {
			st.allowed[ki.Key()] = ki
		}
		st.frontier = onto.Children(onto.Root())
		s.states = append(s.states, st)
	}
	s.buildCoTables()
	s.prune()
	if err := s.maybeMaterialize(ctx); err != nil {
		return nil, err
	}
	return s, nil
}

// buildCoTables precomputes, per table, the set of tables co-occurring
// with it in at least one template. This powers the semi-join pruning of
// the interpretation space (the efficient hierarchy traversal of
// Section 5.6.2): a keyword interpretation is only viable if every other
// keyword can be bound within a template that also covers its table.
func (s *Session) buildCoTables() {
	s.coTables = make(map[string]map[string]bool)
	for _, tpl := range s.scorer.Catalog().Templates {
		for _, a := range tpl.Tree.Tables {
			set := s.coTables[a]
			if set == nil {
				set = make(map[string]bool)
				s.coTables[a] = set
			}
			for _, b := range tpl.Tree.Tables {
				set[b] = true
			}
		}
	}
}

// prune removes keyword interpretations that cannot participate in any
// complete interpretation given the other keywords' surviving candidates
// (pairwise template-compatibility approximation), iterating to a
// fixpoint. It never removes the last candidate of a keyword. Feasibility
// is tested against each other keyword's *table set* through the
// (typically tiny) co-template set of the candidate's table, keeping the
// pass linear in the candidate counts on hub-and-spoke schemas.
func (s *Session) prune() {
	if len(s.states) < 2 {
		return
	}
	changed := true
	for changed {
		changed = false
		// Current table sets per keyword state.
		tablesOf := make([]map[string]bool, len(s.states))
		for i, st := range s.states {
			set := make(map[string]bool, len(st.allowed))
			for _, ki := range st.allowed {
				set[ki.TargetTable()] = true
			}
			tablesOf[i] = set
		}
		for si, st := range s.states {
			if len(st.allowed) <= 1 {
				continue
			}
			for _, k := range sortedKeys(st.allowed) {
				ki := st.allowed[k]
				co := s.coTables[ki.TargetTable()]
				ok := true
				for sj, other := range s.states {
					if other == st {
						continue
					}
					feasible := false
					if len(co) <= len(tablesOf[sj]) {
						for t := range co {
							if tablesOf[sj][t] {
								feasible = true
								break
							}
						}
					} else {
						for t := range tablesOf[sj] {
							if co[t] {
								feasible = true
								break
							}
						}
					}
					if !feasible {
						ok = false
						break
					}
				}
				if !ok && len(st.allowed) > 1 {
					delete(st.allowed, k)
					tablesOf[si] = nil // invalidated; rebuilt next round
					changed = true
				}
			}
			if tablesOf[si] == nil {
				break // rebuild table sets before continuing
			}
		}
	}
}

// Steps returns the number of options evaluated so far.
func (s *Session) Steps() int { return s.steps }

// StepTime returns the cumulative option-generation time.
func (s *Session) StepTime() time.Duration { return s.stepTime }

// SpaceSize returns the product of the surviving per-keyword candidate
// set sizes (the incremental bound of Section 5.6.2), saturating.
func (s *Session) SpaceSize() int {
	const cap = int(^uint(0)>>1) / 2
	size := 1
	for _, st := range s.states {
		n := len(st.allowed)
		if n == 0 {
			return 0
		}
		if size > cap/n {
			return cap
		}
		size *= n
	}
	return size
}

// classKIs returns the allowed interpretations of the keyword that fall
// under the class's subtree (tables mapped to the subtree). Subtree table
// sets are cached per class.
func (s *Session) classKIs(st *keywordState, class int) []query.KeywordInterpretation {
	if s.subtreeTables == nil {
		s.subtreeTables = make(map[int]map[string]bool)
	}
	tables, ok := s.subtreeTables[class]
	if !ok {
		tables = make(map[string]bool)
		for _, t := range s.onto.TablesBelow(class) {
			tables[t] = true
		}
		s.subtreeTables[class] = tables
	}
	var out []query.KeywordInterpretation
	for _, k := range sortedKeys(st.allowed) {
		ki := st.allowed[k]
		if tables[ki.TargetTable()] {
			out = append(out, ki)
		}
	}
	return out
}

// keywordMass returns the total probability mass of the keyword's allowed
// interpretations and a per-key mass lookup.
func (s *Session) keywordMass(st *keywordState) (float64, map[string]float64) {
	total := 0.0
	mass := make(map[string]float64, len(st.allowed))
	for k, ki := range st.allowed {
		m := s.scorer.KeywordProb(ki)
		mass[k] = m
		total += m
	}
	return total, mass
}

// NextOption proposes the most efficient undecided option across
// keywords: class options from the ontology frontiers first, attribute
// options when class granularity is exhausted. ok=false means nothing
// can split the space further.
func (s *Session) NextOption() (Option, bool) {
	start := time.Now()
	defer func() { s.stepTime += time.Since(start) }()
	if s.complete != nil {
		return s.completeLevelOption()
	}
	var best Option
	bestEff := -1.0
	for _, st := range s.states {
		if len(st.allowed) <= 1 {
			continue
		}
		total, mass := s.keywordMass(st)
		if total <= 0 {
			continue
		}
		// Class options over the current frontier.
		for _, class := range st.frontier {
			kis := s.classKIs(st, class)
			if len(kis) == 0 || len(kis) == len(st.allowed) {
				continue // does not split this keyword's candidates
			}
			p := 0.0
			for _, ki := range kis {
				p += mass[ki.Key()]
			}
			p /= total
			if eff := Efficiency(p); eff > bestEff {
				c, _ := s.onto.Class(class)
				bestEff = eff
				best = Option{Pos: st.pos, Keyword: st.keyword, Class: class,
					ClassName: c.Name, KIs: kis}
			}
		}
		// Attribute-level options.
		for _, k := range sortedKeys(st.allowed) {
			if st.askedAttrs[k] {
				continue
			}
			ki := st.allowed[k]
			p := mass[k] / total
			if p >= 1 {
				continue
			}
			if eff := Efficiency(p); eff > bestEff {
				bestEff = eff
				best = Option{Pos: st.pos, Keyword: st.keyword, Class: -1,
					KIs: []query.KeywordInterpretation{ki}}
			}
		}
	}
	if bestEff < 0 {
		return Option{}, false
	}
	return best, true
}

// completeLevelOption refines among materialised interpretations with
// attribute-level options (the final IQP-style stage).
func (s *Session) completeLevelOption() (Option, bool) {
	type agg struct {
		ki   query.KeywordInterpretation
		mass float64
	}
	total := 0.0
	byKey := make(map[string]*agg)
	for _, sc := range s.complete {
		total += sc.Score
		for _, b := range sc.Q.Bindings {
			a := byKey[b.KI.Key()]
			if a == nil {
				a = &agg{ki: b.KI}
				byKey[b.KI.Key()] = a
			}
			a.mass += sc.Score
		}
	}
	if total <= 0 {
		return Option{}, false
	}
	var best Option
	bestEff := -1.0
	for _, k := range sortedAggKeys(byKey) {
		a := byKey[k]
		st := s.stateOf(a.ki.Pos)
		if st != nil && st.askedAttrs[k] {
			continue
		}
		p := a.mass / total
		if p <= 0 || p >= 1 {
			continue
		}
		if eff := Efficiency(p); eff > bestEff {
			bestEff = eff
			best = Option{Pos: a.ki.Pos, Keyword: a.ki.Keyword, Class: -1,
				KIs: []query.KeywordInterpretation{a.ki}}
		}
	}
	if bestEff < 0 {
		return Option{}, false
	}
	return best, true
}

func (s *Session) stateOf(pos int) *keywordState {
	for _, st := range s.states {
		if st.pos == pos {
			return st
		}
	}
	return nil
}

// Accept narrows the keyword to the option's coverage; for class options
// the ontology frontier descends into the class's children. It is the
// context-free convenience form of AcceptContext.
func (s *Session) Accept(o Option) {
	_ = s.AcceptContext(context.Background(), o)
}

// AcceptContext is Accept with cancellation of the materialisation the
// decision may trigger.
func (s *Session) AcceptContext(ctx context.Context, o Option) error {
	s.steps++
	st := s.stateOf(o.Pos)
	if st == nil {
		return nil
	}
	covered := make(map[string]bool, len(o.KIs))
	for _, ki := range o.KIs {
		covered[ki.Key()] = true
	}
	for k := range st.allowed {
		if !covered[k] {
			delete(st.allowed, k)
		}
	}
	if o.Class >= 0 {
		st.frontier = s.onto.Children(o.Class)
	} else if len(o.KIs) == 1 {
		st.askedAttrs[o.KIs[0].Key()] = true
	}
	s.prune()
	s.applyToComplete(o, true)
	return s.maybeMaterialize(ctx)
}

// Reject removes the option's coverage; for class options the whole
// subtree is pruned from the frontier. It is the context-free convenience
// form of RejectContext.
func (s *Session) Reject(o Option) {
	_ = s.RejectContext(context.Background(), o)
}

// RejectContext is Reject with cancellation of the materialisation the
// decision may trigger.
func (s *Session) RejectContext(ctx context.Context, o Option) error {
	s.steps++
	st := s.stateOf(o.Pos)
	if st == nil {
		return nil
	}
	for _, ki := range o.KIs {
		delete(st.allowed, ki.Key())
	}
	if o.Class >= 0 {
		var kept []int
		for _, c := range st.frontier {
			if c != o.Class {
				kept = append(kept, c)
			}
		}
		st.frontier = kept
	} else if len(o.KIs) == 1 {
		st.askedAttrs[o.KIs[0].Key()] = true
	}
	s.prune()
	s.applyToComplete(o, false)
	return s.maybeMaterialize(ctx)
}

func (s *Session) applyToComplete(o Option, accepted bool) {
	if s.complete == nil {
		return
	}
	var kept []prob.Scored
	for _, sc := range s.complete {
		if o.SubsumesInterpretation(sc.Q) == accepted {
			kept = append(kept, sc)
		}
	}
	s.complete = kept
}

// maybeMaterialize materialises complete interpretations once the
// candidate product is small enough, honouring context cancellation.
func (s *Session) maybeMaterialize(ctx context.Context) error {
	if s.complete != nil {
		return nil
	}
	if s.SpaceSize() > s.cfg.MaterializeAt {
		return nil
	}
	start := time.Now()
	// Cartesian product of per-keyword allowed sets.
	tuples := [][]query.KeywordInterpretation{nil}
	for _, st := range s.states {
		keys := sortedKeys(st.allowed)
		var next [][]query.KeywordInterpretation
		for _, t := range tuples {
			for _, k := range keys {
				nt := make([]query.KeywordInterpretation, len(t)+1)
				copy(nt, t)
				nt[len(t)] = st.allowed[k]
				next = append(next, nt)
			}
		}
		tuples = next
	}
	keywords := s.cands.Keywords
	complete, err := core.MaterializeInterpretationsContext(ctx, s.scorer, keywords, tuples, s.cfg.MaxTemplatesPerBinding)
	if err != nil {
		return err
	}
	s.complete = complete
	s.stepTime += time.Since(start)
	return nil
}

// Done reports whether construction has finished.
func (s *Session) Done() bool {
	return s.complete != nil && len(s.complete) <= s.cfg.StopAtRemaining
}

// Remaining returns the materialised interpretations (empty before
// materialisation).
func (s *Session) Remaining() []prob.Scored {
	out := make([]prob.Scored, len(s.complete))
	copy(out, s.complete)
	return out
}

// Result reports one FreeQ construction run.
type Result struct {
	Steps         int
	RemainingRank int
	Remaining     int
	// StepTime is the cumulative system-side time; divide by Steps for the
	// per-step response time of Figure 5.5.
	StepTime time.Duration
}

// RunConstruction drives the session against the intent oracle: the user
// accepts an option iff it covers the intended interpretation's binding
// for the option's keyword.
func RunConstruction(s *Session, intended *query.Interpretation) (Result, error) {
	var res Result
	for !s.Done() {
		o, ok := s.NextOption()
		if !ok {
			break
		}
		if accepts(intended, o) {
			s.Accept(o)
		} else {
			s.Reject(o)
		}
	}
	res.Steps = s.Steps()
	res.StepTime = s.StepTime()
	remaining := s.Remaining()
	res.Remaining = len(remaining)
	key := intended.Key()
	for i, sc := range remaining {
		if sc.Q.Key() == key {
			res.RemainingRank = i + 1
			break
		}
	}
	if res.RemainingRank == 0 {
		return res, fmt.Errorf("freeq: intended interpretation lost during construction")
	}
	return res, nil
}

func accepts(intended *query.Interpretation, o Option) bool {
	for _, b := range intended.Bindings {
		if b.KI.Pos == o.Pos {
			return o.Covers(b.KI)
		}
	}
	return false
}

// MapConceptTables maps every table to its concept class in the ontology
// ("wordnet_<concept>"), building the FreeQ schema layer from the
// generator's ground truth or from a YAGO+F matching (Chapter 6). Tables
// whose class is missing are left unmapped (reachable only through
// attribute-level options).
func MapConceptTables(onto *ontology.Ontology, conceptOf map[string]string) int {
	mapped := 0
	tables := make([]string, 0, len(conceptOf))
	for t := range conceptOf {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, table := range tables {
		if id, ok := onto.ByName("wordnet_" + conceptOf[table]); ok {
			onto.MapTable(id, table)
			mapped++
		}
	}
	return mapped
}

// InteractionEntropy returns log2 of the current space size — the number
// of perfectly balanced questions still needed; used by the Figure 5.2
// harness to relate QCO efficiency to interaction cost.
func InteractionEntropy(spaceSize int) float64 {
	if spaceSize <= 1 {
		return 0
	}
	return math.Log2(float64(spaceSize))
}

func sortedKeys(m map[string]query.KeywordInterpretation) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedAggKeys[T any](m map[string]*T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
