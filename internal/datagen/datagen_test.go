package datagen

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/invindex"
	"repro/internal/relstore"
)

func TestPools(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewPools(rng, 50)
	if len(p.Surnames) != 50 {
		t.Fatalf("surname pool = %d", len(p.Surnames))
	}
	name := p.PersonName()
	if len(strings.Fields(name)) != 2 {
		t.Fatalf("PersonName = %q", name)
	}
	title := p.Title(1.0)
	if title == "" {
		t.Fatal("empty title")
	}
	y := p.Year()
	if len(y) != 4 {
		t.Fatalf("Year = %q", y)
	}
	if n := len(strings.Fields(p.Sentence(6))); n != 6 {
		t.Fatalf("Sentence words = %d", n)
	}
	// Zipf skew: the most common surname should dominate a large sample.
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		counts[p.Surname()]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 200 {
		t.Fatalf("surname distribution not skewed enough: max=%d", max)
	}
}

// save serialises a database to bytes for byte-identity comparison.
func save(t *testing.T, db *relstore.Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIMDBDeterministic pins the determinism contract the load harness
// and the demo datasets rely on: the same config yields byte-identical
// serialised data — every row, every value, every ordering — not just
// matching counts.
func TestIMDBDeterministic(t *testing.T) {
	cfg := IMDBConfig{Movies: 50, Actors: 40, Directors: 10, Companies: 5, Seed: 7}
	db1, err := IMDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := IMDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := save(t, db1), save(t, db2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("IMDB not byte-identical across runs (sizes %d vs %d)", len(b1), len(b2))
	}
	// A different seed must actually change the data.
	cfg.Seed = 8
	db3, err := IMDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, save(t, db3)) {
		t.Fatal("IMDB ignored the seed")
	}
}

// TestLyricsDeterministic is the same contract for the chain schema.
func TestLyricsDeterministic(t *testing.T) {
	cfg := LyricsConfig{Artists: 30, Seed: 5}
	db1, err := Lyrics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Lyrics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(save(t, db1), save(t, db2)) {
		t.Fatal("Lyrics not byte-identical across runs")
	}
}

// TestWorkloadDeterministic: same database + same config → identical
// intent streams, keyword for keyword.
func TestWorkloadDeterministic(t *testing.T) {
	db, err := IMDB(IMDBConfig{Movies: 80, Actors: 50, Directors: 12, Companies: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := WorkloadConfig{Queries: 60, Seed: 13}
	in1 := MovieWorkload(db, cfg)
	in2 := MovieWorkload(db, cfg)
	if len(in1) != len(in2) {
		t.Fatalf("intent counts: %d vs %d", len(in1), len(in2))
	}
	for i := range in1 {
		if in1[i].String() != in2[i].String() || in1[i].MultiConcept != in2[i].MultiConcept {
			t.Fatalf("intent %d diverged: %v vs %v", i, in1[i], in2[i])
		}
	}
}

func TestIMDBShape(t *testing.T) {
	db, err := IMDB(IMDBConfig{Movies: 30, Actors: 20, Directors: 5, Companies: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumTables() != 7 {
		t.Fatalf("IMDB tables = %d, want 7", db.NumTables())
	}
	for _, name := range []string{"actor", "director", "movie", "company", "acts", "directs", "produced_by"} {
		if db.Table(name) == nil {
			t.Fatalf("missing table %s", name)
		}
	}
	if db.Table("movie").Len() != 30 {
		t.Fatalf("movies = %d", db.Table("movie").Len())
	}
	// Every movie has a director and a company.
	if db.Table("directs").Len() != 30 || db.Table("produced_by").Len() != 30 {
		t.Fatal("directs/produced_by cardinality wrong")
	}
	// FK integrity: every acts row references existing actor and movie.
	acts := db.Table("acts")
	for _, row := range acts.Rows() {
		aid, _ := acts.Value(row.RowID, "actor_id")
		if len(db.Table("actor").LookupEqual("id", aid)) != 1 {
			t.Fatalf("dangling actor_id %s", aid)
		}
	}
}

func TestIMDBAmbiguity(t *testing.T) {
	db, err := IMDB(IMDBConfig{Movies: 300, Actors: 200, Directors: 50, Companies: 20,
		NameInTitleProb: 0.4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ix := invindex.Build(db)
	// There must exist surname tokens occurring both in person names and
	// in movie titles — the ambiguity the experiments rely on.
	ambiguous := 0
	// Scan actor-name tokens for title collisions.
	actor := db.Table("actor")
	seen := map[string]bool{}
	for _, row := range actor.Rows() {
		name, _ := actor.Value(row.RowID, "name")
		for _, tok := range relstore.Tokenize(name) {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			inTitle := false
			for _, p := range ix.Lookup(tok) {
				if p.Attr.String() == "movie.title" {
					inTitle = true
				}
			}
			if inTitle {
				ambiguous++
			}
		}
	}
	if ambiguous < 5 {
		t.Fatalf("too little cross-attribute ambiguity: %d shared tokens", ambiguous)
	}
}

func TestLyricsShape(t *testing.T) {
	db, err := Lyrics(LyricsConfig{Artists: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumTables() != 5 {
		t.Fatalf("Lyrics tables = %d, want 5", db.NumTables())
	}
	for _, name := range []string{"artist", "album", "song", "artist_album", "album_song"} {
		if db.Table(name) == nil {
			t.Fatalf("missing table %s", name)
		}
	}
	if db.Table("artist").Len() != 20 {
		t.Fatalf("artists = %d", db.Table("artist").Len())
	}
	// The chain is navigable: every album_song references an existing
	// album that an artist owns.
	as := db.Table("album_song")
	aa := db.Table("artist_album")
	for _, row := range as.Rows() {
		alid, _ := as.Value(row.RowID, "album_id")
		if len(aa.LookupEqual("album_id", alid)) == 0 {
			t.Fatalf("album %s has no artist", alid)
		}
	}
}

func TestMovieWorkload(t *testing.T) {
	db, err := IMDB(IMDBConfig{Movies: 100, Actors: 60, Directors: 15, Companies: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ix := invindex.Build(db)
	intents := MovieWorkload(db, WorkloadConfig{Queries: 40, MultiConceptFraction: 0.5, Seed: 9})
	if len(intents) != 40 {
		t.Fatalf("intents = %d", len(intents))
	}
	mc := 0
	for _, in := range intents {
		if len(in.Keywords) != len(in.Attrs) {
			t.Fatalf("keyword/attr length mismatch: %v", in)
		}
		if in.MultiConcept {
			mc++
		}
		// Ground truth must be realisable: each keyword occurs in its
		// intended attribute.
		for i, kw := range in.Keywords {
			parts := strings.SplitN(in.Attrs[i], ".", 2)
			attr := invindex.AttrRef{Table: parts[0], Column: parts[1]}
			if ix.TermCount(kw, attr) == 0 {
				t.Fatalf("keyword %q does not occur in intended attr %s", kw, in.Attrs[i])
			}
		}
	}
	if mc == 0 || mc == len(intents) {
		t.Fatalf("multi-concept mix degenerate: %d/%d", mc, len(intents))
	}
}

func TestMusicWorkload(t *testing.T) {
	db, err := Lyrics(LyricsConfig{Artists: 40, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ix := invindex.Build(db)
	intents := MusicWorkload(db, WorkloadConfig{Queries: 20, MultiConceptFraction: 0.5, Seed: 9})
	if len(intents) != 20 {
		t.Fatalf("intents = %d", len(intents))
	}
	for _, in := range intents {
		for i, kw := range in.Keywords {
			parts := strings.SplitN(in.Attrs[i], ".", 2)
			attr := invindex.AttrRef{Table: parts[0], Column: parts[1]}
			if ix.TermCount(kw, attr) == 0 {
				t.Fatalf("keyword %q does not occur in intended attr %s", kw, in.Attrs[i])
			}
		}
	}
}

func TestTemplateLog(t *testing.T) {
	log := TemplateLog(16, 1000, 0.85, 3)
	total := 0
	max := 0
	for _, c := range log {
		total += c
		if c > max {
			max = c
		}
	}
	if total != 1000 {
		t.Fatalf("log total = %d", total)
	}
	if max < 850 {
		t.Fatalf("skew not honoured: max = %d", max)
	}
	if len(TemplateLog(0, 100, 0.5, 1)) != 0 {
		t.Fatal("degenerate log should be empty")
	}
}

func TestConceptSpace(t *testing.T) {
	cs := NewConceptSpace(10, 5, 50, 1)
	if len(cs.Names) != 10 {
		t.Fatalf("concepts = %d", len(cs.Names))
	}
	for _, name := range cs.Names {
		pool := cs.Instances[name]
		if len(pool) < 5 {
			t.Fatalf("pool of %s too small: %d", name, len(pool))
		}
		// Instance ids are namespaced by concept (globally unique).
		for _, inst := range pool {
			if !strings.HasPrefix(inst, name+"/") {
				t.Fatalf("instance %q not namespaced", inst)
			}
		}
	}
	if cs.TotalInstances() < 50 {
		t.Fatalf("TotalInstances = %d", cs.TotalInstances())
	}
}

func TestFreebase(t *testing.T) {
	cs := NewConceptSpace(12, 20, 100, 1)
	fd, err := Freebase(cs, FreebaseConfig{Domains: 4, TablesPerDomain: 6, RowsPerTable: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 4 domains × (1 hub + 6 tables) = 28 tables.
	if fd.DB.NumTables() != 28 {
		t.Fatalf("tables = %d, want 28", fd.DB.NumTables())
	}
	if len(fd.Domains) != 4 {
		t.Fatalf("domains = %v", fd.Domains)
	}
	for table, concept := range fd.ConceptOf {
		insts := fd.InstancesOf[table]
		if len(insts) == 0 {
			t.Fatalf("table %s has no instances", table)
		}
		for _, inst := range insts {
			if !strings.HasPrefix(inst, concept+"/") {
				t.Fatalf("table %s instance %q not from concept %s", table, inst, concept)
			}
		}
		if fd.DomainOf[table] == "" {
			t.Fatalf("table %s has no domain", table)
		}
	}
	// Rows carry the instance as primary key.
	for table, insts := range fd.InstancesOf {
		tb := fd.DB.Table(table)
		if tb.Len() != len(insts) {
			t.Fatalf("table %s rows=%d instances=%d", table, tb.Len(), len(insts))
		}
	}
}

func TestYAGO(t *testing.T) {
	cs := NewConceptSpace(8, 20, 60, 1)
	o := YAGO(cs, YAGOConfig{BackboneDepth: 3, BackboneBranch: 2, WikiCategoriesPerConcept: 2, Seed: 5})
	// Backbone: 1 + 2 + 4 + 8 = 15, plus 8 concepts, plus ≤16 wiki cats.
	if o.NumClasses() < 15+8 {
		t.Fatalf("classes = %d", o.NumClasses())
	}
	// Concept classes exist and carry instances.
	for _, concept := range cs.Names {
		id, ok := o.ByName("wordnet_" + concept)
		if !ok {
			t.Fatalf("concept class for %s missing", concept)
		}
		if o.DirectInstanceCount(id) == 0 {
			t.Fatalf("concept class %s has no instances", concept)
		}
		// Coverage below 100%: some concept instances are not in YAGO.
		if o.DirectInstanceCount(id) > len(cs.Instances[concept]) {
			t.Fatalf("class %s has more instances than the pool", concept)
		}
	}
	// Backbone classes have no direct instances.
	for id := 0; id < 15; id++ {
		c, _ := o.Class(id)
		if strings.HasPrefix(c.Name, "wordnet_c") || c.ID == 0 {
			if o.DirectInstanceCount(id) != 0 {
				t.Fatalf("backbone class %s has instances", c.Name)
			}
		}
	}
	// Wiki categories are leaves under concepts.
	found := false
	for _, leaf := range o.Leaves() {
		c, _ := o.Class(leaf)
		if strings.HasPrefix(c.Name, "wikicategory_") {
			found = true
			if o.DirectInstanceCount(leaf) == 0 {
				t.Fatalf("wiki category %s empty", c.Name)
			}
		}
	}
	if !found {
		t.Fatal("no wiki categories generated")
	}
}

func TestYAGOFreebaseOverlap(t *testing.T) {
	cs := NewConceptSpace(10, 30, 80, 1)
	fd, err := Freebase(cs, FreebaseConfig{Domains: 3, TablesPerDomain: 5, RowsPerTable: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	o := YAGO(cs, YAGOConfig{CoverageProb: 0.9, Seed: 3})
	// A Freebase table's instances must overlap strongly with its true
	// concept's YAGO class.
	for table, concept := range fd.ConceptOf {
		cid, ok := o.ByName("wordnet_" + concept)
		if !ok {
			t.Fatalf("no class for %s", concept)
		}
		members := map[string]bool{}
		for _, inst := range o.DirectInstances(cid) {
			members[inst] = true
		}
		overlap := 0
		for _, inst := range fd.InstancesOf[table] {
			if members[inst] {
				overlap++
			}
		}
		frac := float64(overlap) / float64(len(fd.InstancesOf[table]))
		if frac < 0.5 {
			t.Fatalf("table %s overlaps its true class only %.2f", table, frac)
		}
	}
}

func TestIntentString(t *testing.T) {
	in := Intent{Keywords: []string{"a", "b"}, Attrs: []string{"t.x", "t.y"}}
	s := in.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "t.x") {
		t.Fatalf("Intent.String = %q", s)
	}
}

func TestGeneratorDefaults(t *testing.T) {
	// Zero-value configs fill sensible defaults and still generate.
	if _, err := IMDB(IMDBConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Lyrics(LyricsConfig{}); err != nil {
		t.Fatal(err)
	}
	cs := NewConceptSpace(0, 0, 0, 1) // all defaults
	if len(cs.Names) == 0 {
		t.Fatal("default concept space empty")
	}
	if _, err := Freebase(cs, FreebaseConfig{}); err != nil {
		t.Fatal(err)
	}
	o := YAGO(cs, YAGOConfig{})
	if o.NumClasses() == 0 {
		t.Fatal("default YAGO empty")
	}
	cfg := WorkloadConfig{MultiConceptFraction: -1}
	cfg.defaults()
	if cfg.MultiConceptFraction != 0.5 || cfg.Queries != 50 {
		t.Fatalf("workload defaults = %+v", cfg)
	}
}
