package relstore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file implements compiled join plans: the execution-ready form of a
// candidate network. Compilation resolves every string-keyed lookup of
// the interpreted executor once per plan — table pointers, predicate and
// join-edge column positions, canonical cache keys — so the recursive
// enumeration runs on integers and slices only. Execution then proceeds
// in three phases:
//
//  1. selection: per-node candidate sets from the posting lists (shared
//     through the per-request SelectionCache when one is supplied),
//  2. semi-join pruning: candidate sets are reduced along the join tree
//     (bottom-up then top-down over the DFS order), dropping rows with no
//     join partner before enumeration ever touches them, and
//  3. enumeration: index nested loops rooted at the most selective node,
//     exactly as the reference executor, with sorted-candidate bitsets
//     replacing map[int]bool membership tests.
//
// Pruning only removes rows that cannot occur in any joining tree of
// tuples, and every phase preserves ascending candidate order, so the
// materialised JTT sequence is identical to the reference ExecuteScan —
// byte-for-byte, including under a result Limit.

// compiledPred is one keyword-containment predicate with its column
// resolved. col is -1 when the plan references an unknown column; such a
// predicate matches no row (the reference scan behaves identically).
type compiledPred struct {
	col      int
	keywords []string
}

// compiledNode is one join-plan node with its table resolved.
type compiledNode struct {
	table *Table
	preds []compiledPred
}

// compiledHalf is one direction of a join edge: this node's fromCol joins
// the neighbour node to's toCol.
type compiledHalf struct {
	to             int
	fromCol, toCol int
}

// CompiledPlan is an executable, pre-resolved join plan. Compile once,
// execute many times; a compiled plan is immutable and safe for
// concurrent Execute / CountRows calls.
type CompiledPlan struct {
	// Source is the plan this was compiled from.
	Source *JoinPlan

	db    *Database
	nodes []compiledNode
	adj   [][]compiledHalf
}

// Compile validates the plan and resolves its tables and columns.
func (db *Database) Compile(p *JoinPlan) (*CompiledPlan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Nodes)
	cp := &CompiledPlan{Source: p, db: db, nodes: make([]compiledNode, n), adj: make([][]compiledHalf, n)}
	for i, node := range p.Nodes {
		t := db.Table(node.Table)
		if t == nil {
			return nil, fmt.Errorf("relstore: join plan references unknown table %s", node.Table)
		}
		preds := make([]compiledPred, len(node.Predicates))
		for j, pred := range node.Predicates {
			preds[j] = compiledPred{col: t.Schema.ColumnIndex(pred.Column), keywords: pred.Keywords}
		}
		cp.nodes[i] = compiledNode{table: t, preds: preds}
	}
	for _, e := range p.Edges {
		fi := cp.nodes[e.From].table.Schema.ColumnIndex(e.FromColumn)
		ti := cp.nodes[e.To].table.Schema.ColumnIndex(e.ToColumn)
		if fi < 0 || ti < 0 {
			return nil, fmt.Errorf("relstore: join edge %s.%s=%s.%s references unknown column",
				p.Nodes[e.From].Table, e.FromColumn, p.Nodes[e.To].Table, e.ToColumn)
		}
		cp.adj[e.From] = append(cp.adj[e.From], compiledHalf{to: e.To, fromCol: fi, toCol: ti})
		cp.adj[e.To] = append(cp.adj[e.To], compiledHalf{to: e.From, fromCol: ti, toCol: fi})
	}
	return cp, nil
}

// candidates computes the node's candidate rows: the intersection of its
// predicate selections, or all rows when unconstrained. Selections come
// from the posting lists, memoised per (table, column, bag) in the cache
// when one is supplied. The result is shared/read-only.
func (cp *CompiledPlan) candidates(i int, cache *SelectionCache) []int {
	node := &cp.nodes[i]
	if len(node.preds) == 0 {
		// Unconstrained: the empty bag selects every row; memoised under
		// column -1 so repeated plans over the same connector tables
		// share one identity slice.
		return cache.selection(node.table, -1, nil)
	}
	var out []int
	for j, pred := range node.preds {
		if pred.col < 0 {
			// Unknown predicate column: matches nothing, like the scan.
			return nil
		}
		sel := cache.selection(node.table, pred.col, pred.keywords)
		if len(sel) == 0 {
			return nil
		}
		if j == 0 {
			out = sel
		} else {
			out = intersectSorted(out, sel)
		}
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

// bitset is a fixed-capacity bit vector over RowIDs.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) reset() {
	for i := range b {
		b[i] = 0
	}
}

// step is one node of the DFS enumeration order. parentCol/col are the
// join column positions in the parent's and this node's table.
type step struct {
	node, parent   int
	parentCol, col int
}

// Execute materialises the joining tuple trees of the compiled plan; see
// Database.Execute for the semantics.
func (cp *CompiledPlan) Execute(opts ExecuteOptions) ([]JTT, error) {
	results, _ := cp.run(opts.Cache, opts.Limit, true)
	return results, nil
}

// CountRows counts the plan's results without materialising them: the
// enumeration recursion increments a counter instead of copying row
// assignments, so counting allocates nothing per result. limit bounds the
// count (0 = unlimited).
func (cp *CompiledPlan) CountRows(limit int, cache *SelectionCache) (int, error) {
	_, n := cp.run(cache, limit, false)
	return n, nil
}

// ExecutePart materialises only the joining trees whose root-candidate
// RowID satisfies part — one shard's slice of the plan's result stream.
// The root node is chosen from the *unfiltered* candidate sets, exactly
// as Execute chooses it, so every shard of a scatter-gather execution
// agrees on the root and on the enumeration order; the returned root
// index (-1 when the plan has no candidates at all) tells the
// coordinator which JTT position to merge on. Because enumeration emits
// results in ascending root-candidate order, grouped in contiguous
// blocks per root row, a partitioned stream is an order-preserving
// subsequence of the full stream, and disjoint partitions merge back to
// the exact global sequence — including under limit, since any result
// within the first limit of the merged stream sits within the first
// limit of its own shard's stream.
//
// Partitioned runs deliberately bypass the engine-lifetime whole-plan
// answer cache consulted by Execute: a partial result stream must never
// be served from, or published under, the plan's global cache key.
// Selections still flow through cache, including its shared layer —
// they are partition-independent.
func (cp *CompiledPlan) ExecutePart(limit int, cache *SelectionCache, part func(rowID int) bool) ([]JTT, int, error) {
	results, _, root := cp.runCore(cache, limit, true, part)
	return results, root, nil
}

// CountPart is ExecutePart's counting form: the number of results whose
// root candidate satisfies part, bounded by limit (0 = unlimited). A
// coordinator recovers the exact global count as
// min(Σ_i CountPart_i(limit), limit): per-shard truncation never
// under-reports the capped total because each shard's true count only
// exceeds its reported count when the report already reached limit.
func (cp *CompiledPlan) CountPart(limit int, cache *SelectionCache, part func(rowID int) bool) (int, error) {
	_, n, _ := cp.runCore(cache, limit, false, part)
	return n, nil
}

// cacheKey is the canonical identity of this plan's result stream in the
// engine-lifetime answer cache. Nodes contribute their table plus their
// predicates as sorted (column, canonical bag) pairs — predicate order
// never affects the output, so permutations share one entry — while
// edges are encoded verbatim: edge declaration order drives the DFS
// enumeration order and therefore the JTT sequence. The limit is part of
// the key because a truncated result stream is a different answer.
// Separator bytes sit below the bag joiner ("\x00" inside CanonicalBag
// output never delimits key fields).
func (cp *CompiledPlan) cacheKey(limit int) string {
	var b strings.Builder
	for i := range cp.nodes {
		node := &cp.nodes[i]
		b.WriteString("\x01")
		b.WriteString(node.table.Schema.Name)
		preds := make([]string, len(node.preds))
		for j, p := range node.preds {
			preds[j] = strconv.Itoa(p.col) + "\x03" + CanonicalBag(p.keywords)
		}
		sort.Strings(preds)
		for _, p := range preds {
			b.WriteString("\x02")
			b.WriteString(p)
		}
	}
	b.WriteString("\x04")
	for _, e := range cp.Source.Edges {
		fi := cp.nodes[e.From].table.Schema.ColumnIndex(e.FromColumn)
		ti := cp.nodes[e.To].table.Schema.ColumnIndex(e.ToColumn)
		b.WriteString("\x02")
		b.WriteString(strconv.Itoa(e.From) + "," + strconv.Itoa(fi) + "," +
			strconv.Itoa(e.To) + "," + strconv.Itoa(ti))
	}
	b.WriteString("\x05")
	b.WriteString(strconv.Itoa(limit))
	return b.String()
}

// footprint is the set of attributes this plan's output is computed
// from: every resolved predicate column, every join column (both ends of
// every edge — enumeration and pruning read join values), and the
// membership of unconstrained tables (their candidate set is "all live
// rows"). Constrained nodes need no membership attribute: inserts and
// deletes stale every column, so their predicate columns already cover
// membership change. Unresolvable predicate columns contribute nothing —
// they force an empty result under any data.
func (cp *CompiledPlan) footprint() []Attr {
	seen := make(map[Attr]bool)
	var out []Attr
	add := func(a Attr) {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for i := range cp.nodes {
		node := &cp.nodes[i]
		name := node.table.Schema.Name
		if len(node.preds) == 0 {
			add(Attr{Table: name, Col: MembershipCol})
		}
		for _, p := range node.preds {
			if p.col >= 0 {
				add(Attr{Table: name, Col: p.col})
			}
		}
		for _, he := range cp.adj[i] {
			add(Attr{Table: name, Col: he.fromCol})
		}
	}
	sortAttrs(out)
	return out
}

// run consults the engine-lifetime answer cache (when the request's
// SelectionCache carries one) for the whole plan result before falling
// back to runCore, and publishes fresh results — including empty ones;
// proving emptiness costs the same selections and pruning as any other
// answer. Cached values are row-ID lists shared read-only across
// requests; the store guarantees they are valid for this request's
// snapshot (see SharedStore).
func (cp *CompiledPlan) run(cache *SelectionCache, limit int, collect bool) ([]JTT, int) {
	if cache == nil || cache.shared == nil {
		results, n, _ := cp.runCore(cache, limit, collect, nil)
		return results, n
	}
	key := cp.cacheKey(limit)
	if !collect {
		if n, ok := cache.shared.GetCount(key); ok {
			return nil, n
		}
		_, n, _ := cp.runCore(cache, limit, false, nil)
		cache.shared.PutCount(key, cp.footprint(), n)
		return nil, n
	}
	if rows, ok := cache.shared.GetPlan(key); ok {
		if len(rows) == 0 {
			return nil, 0
		}
		results := make([]JTT, len(rows))
		for i, r := range rows {
			results[i] = JTT{Rows: r}
		}
		return results, len(rows)
	}
	results, count, _ := cp.runCore(cache, limit, true, nil)
	rows := make([][]int, len(results))
	for i := range results {
		rows[i] = results[i].Rows
	}
	cache.shared.PutPlan(key, cp.footprint(), rows)
	return results, count
}

// runCore is the shared execution core: selection, semi-join pruning, and
// rooted index-nested-loop enumeration. With collect it materialises
// JTTs; otherwise it only counts. A non-nil part restricts enumeration to
// root candidates it accepts — applied strictly after root selection (so
// partitioned runs agree with the full run on the root) and before
// pruning (pruning a smaller candidate set is pure optimisation; it never
// changes which trees exist). The returned root index is -1 only when a
// node had no candidates before the root was chosen.
func (cp *CompiledPlan) runCore(cache *SelectionCache, limit int, collect bool, part func(rowID int) bool) ([]JTT, int, int) {
	n := len(cp.nodes)
	cands := make([][]int, n)
	for i := range cp.nodes {
		c := cp.candidates(i, cache)
		if len(c) == 0 {
			return nil, 0, -1
		}
		cands[i] = c
	}

	// Root: most selective node by pre-pruning candidate count (first
	// wins ties) — the same choice as the reference executor, so the
	// enumeration order, and therefore the JTT sequence, is identical.
	// With a partition filter the choice still uses the unfiltered
	// counts: every shard must elect the same root.
	root := 0
	for i := 1; i < n; i++ {
		if len(cands[i]) < len(cands[root]) {
			root = i
		}
	}

	if part != nil {
		own := make([]int, 0, len(cands[root]))
		for _, id := range cands[root] {
			if part(id) {
				own = append(own, id)
			}
		}
		if len(own) == 0 {
			return nil, 0, root
		}
		cands[root] = own
	}

	// DFS order from the root, visiting adjacency in edge declaration
	// order (as the reference does).
	order := make([]step, 0, n)
	visited := make([]bool, n)
	var build func(v, parent, parentCol, col int)
	build = func(v, parent, parentCol, col int) {
		visited[v] = true
		order = append(order, step{node: v, parent: parent, parentCol: parentCol, col: col})
		for _, he := range cp.adj[v] {
			if !visited[he.to] {
				build(he.to, v, he.fromCol, he.toCol)
			}
		}
	}
	build(root, -1, -1, -1)

	// Candidate membership bitsets. The slices are copied first: pruning
	// filters them in place, and the originals are shared with the
	// posting lists / selection cache.
	bits := make([]bitset, n)
	for i := range cands {
		own := make([]int, len(cands[i]))
		copy(own, cands[i])
		cands[i] = own
		b := newBitset(cp.nodes[i].table.Len())
		for _, id := range own {
			b.set(id)
		}
		bits[i] = b
	}

	// Join-column equality indexes, fetched once per direction. idx[k]
	// serves the enumeration of order[k] (child joined to parent); the
	// reverse direction serves bottom-up pruning.
	idx := make([]map[string][]int, len(order))
	revIdx := make([]map[string][]int, len(order))
	for k := 1; k < len(order); k++ {
		st := order[k]
		idx[k] = cp.nodes[st.node].table.ensureIndex(st.col)
		revIdx[k] = cp.nodes[st.parent].table.ensureIndex(st.parentCol)
	}

	// Semi-join pruning (Yannakakis-style full reduction over the join
	// tree): bottom-up, a parent row survives only with a join partner
	// among the child's candidates; top-down, the reverse. Pruned rows
	// cannot occur in any JTT, and pruning preserves candidate order, so
	// the enumeration output is unchanged — it just stops wading through
	// dead branches.
	prune := func(a int, aCol int, aBits bitset, b int, lookup map[string][]int, bBits bitset) bool {
		rows := cp.nodes[a].table.rows
		kept := cands[a][:0]
		for _, id := range cands[a] {
			found := false
			for _, partner := range lookup[rows[id].Values[aCol]] {
				if bBits.has(partner) {
					found = true
					break
				}
			}
			if found {
				kept = append(kept, id)
			}
		}
		if len(kept) == len(cands[a]) {
			return len(kept) > 0
		}
		cands[a] = kept
		aBits.reset()
		for _, id := range kept {
			aBits.set(id)
		}
		return len(kept) > 0
	}
	for k := len(order) - 1; k >= 1; k-- {
		st := order[k]
		// Restrict the parent to rows with a partner among the child's
		// candidates (child's equality index on the join column).
		if !prune(st.parent, st.parentCol, bits[st.parent], st.node, idx[k], bits[st.node]) {
			return nil, 0, root
		}
	}
	for k := 1; k < len(order); k++ {
		st := order[k]
		if !prune(st.node, st.col, bits[st.node], st.parent, revIdx[k], bits[st.parent]) {
			return nil, 0, root
		}
	}

	// Index-nested-loop enumeration over the DFS order.
	var results []JTT
	count := 0
	assign := make([]int, n)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(order) {
			count++
			if collect {
				row := make([]int, n)
				copy(row, assign)
				results = append(results, JTT{Rows: row})
			}
			return limit > 0 && count >= limit
		}
		st := order[k]
		if st.parent < 0 {
			for _, id := range cands[st.node] {
				assign[st.node] = id
				if rec(k + 1) {
					return true
				}
			}
			return false
		}
		pv := cp.nodes[st.parent].table.rows[assign[st.parent]].Values[st.parentCol]
		member := bits[st.node]
		for _, id := range idx[k][pv] {
			if !member.has(id) {
				continue
			}
			assign[st.node] = id
			if rec(k + 1) {
				return true
			}
		}
		return false
	}
	rec(0)
	return results, count, root
}

// CacheKey exposes the plan's canonical answer-cache identity for
// coordinators that consult the shared store around a scatter-gather
// execution (partitioned runs themselves never touch the whole-plan
// cache; see ExecutePart).
func (cp *CompiledPlan) CacheKey(limit int) string { return cp.cacheKey(limit) }

// Footprint exposes the plan's attribute footprint for publishing merged
// scatter-gather results into the shared store with correct
// invalidation coverage.
func (cp *CompiledPlan) Footprint() []Attr { return cp.footprint() }
