package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	keysearch "repro"
	"repro/internal/loadgen"
)

// buildServeBinary compiles cmd/serve once for the end-to-end tests.
func buildServeBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "serve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/serve: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves an ephemeral port and releases it for the server.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}

// writeDatasetDump generates a datagen movies dataset big enough that
// searches take real milliseconds (the bundled demo corpora serve in
// ~100µs, too fast for closed-loop clients to ever queue) and writes it
// as an Engine.SaveTo-format dump for serve's -db flag. It also returns
// a heavy-tailed search/rows op stream over that corpus so the load
// loop issues the same Zipf-skewed queries the load harness uses.
func writeDatasetDump(t *testing.T) (string, []loadgen.Op) {
	t.Helper()
	cfg := loadgen.DatasetConfig{Kind: loadgen.KindMovies, TargetRows: 60000, Seed: 42}
	db, err := loadgen.BuildDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "movies.dump")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ops, err := loadgen.BuildWorkload(db, cfg.Kind, loadgen.WorkloadConfig{
		Ops:  64,
		Mix:  loadgen.Mix{Search: 3, Rows: 1},
		Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return path, ops
}

// TestGracefulShutdownUnderLoad is the end-to-end drain test: a real
// serve process with the adaptive governor and a tight queue is
// saturated by closed-loop clients, mutated so there is WAL state to
// flush, and SIGTERMed mid-load. It must (1) complete every accepted
// response intact — every 200 carries decodable JSON, no mid-body
// drops, (2) shed the overflow with structured 429/503s rather than
// hanging, (3) exit zero within the drain budget, and (4) land the
// final checkpoint so the state directory reopens with nothing left
// to replay.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real server process")
	}
	bin := buildServeBinary(t)
	dump, ops := writeDatasetDump(t)
	addr := freeAddr(t)
	base := "http://" + addr
	dataDir := filepath.Join(t.TempDir(), "state")

	cmd := exec.Command(bin,
		"-addr", addr,
		"-db", dump,
		"-mutable", "-data-dir", dataDir,
		"-adaptive", "-adapt-min", "1", "-adapt-max", "2",
		"-max-queue", "2", "-queue-timeout", "100ms",
		"-request-timeout", "2s",
	)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() // no-op on the happy path (already exited)
	waitHealthy(t, base)

	// Mutations so the final checkpoint has something real to flush.
	// Keys use an "sd-" prefix no datagen generator emits, so they can
	// never collide with the dataset's own "a<N>" actor keys.
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(
			`{"mutations":[{"op":"insert","table":"actor","values":["sd-%d","Shutdown Test %d"]}]}`, i, i)
		resp, err := http.Post(base+"/v1/mutate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate %d: status %d: %s", i, resp.StatusCode, b)
		}
	}

	// Saturate: far more closed-loop clients than the 2-slot ceiling
	// plus 2-deep queue can hold, so sheds are guaranteed.
	var (
		oks, sheds, badBodies atomic.Int64
		termSent              atomic.Bool
		wg                    sync.WaitGroup
	)
	stop := make(chan struct{})
	client := &http.Client{Timeout: 10 * time.Second}
	endpoint := map[loadgen.OpKind]string{
		loadgen.OpSearch: "/v1/search",
		loadgen.OpRows:   "/v1/rows",
	}
	for w := 0; w < 24; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				op := ops[i%len(ops)]
				resp, err := client.Post(base+endpoint[op.Kind], "application/json",
					bytes.NewReader(op.Body))
				if err != nil {
					// Connection errors are expected once the listener
					// is closing; before SIGTERM they are real failures.
					if !termSent.Load() {
						t.Errorf("pre-shutdown request error: %v", err)
					}
					return
				}
				body, readErr := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case readErr != nil:
					// A response, once started, must arrive whole —
					// even during the drain.
					badBodies.Add(1)
				case resp.StatusCode == http.StatusOK:
					if !json.Valid(body) {
						badBodies.Add(1)
					} else {
						oks.Add(1)
					}
				case resp.StatusCode == http.StatusTooManyRequests ||
					resp.StatusCode == http.StatusServiceUnavailable:
					var er struct {
						Code string `json:"code"`
					}
					if json.Unmarshal(body, &er) != nil || er.Code == "" {
						badBodies.Add(1)
					} else {
						sheds.Add(1)
					}
				case resp.StatusCode == http.StatusGatewayTimeout:
					// Deadline expiry under saturation is legitimate.
				default:
					t.Errorf("unexpected status %d: %s", resp.StatusCode, body)
				}
			}
		}(w)
	}

	// Let the load bite for a couple of governor windows, then SIGTERM
	// mid-saturation.
	time.Sleep(1200 * time.Millisecond)
	termSent.Store(true)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("server exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server hung on SIGTERM (never exited)")
	}
	close(stop)
	wg.Wait()

	if badBodies.Load() != 0 {
		t.Fatalf("%d responses were truncated or structurally broken", badBodies.Load())
	}
	if oks.Load() == 0 {
		t.Fatal("no successful responses before/during shutdown — load never ran")
	}
	if sheds.Load() == 0 {
		t.Fatal("no shed responses under 12x oversubscription — the gate never engaged")
	}

	// The final checkpoint must have landed: reopening the state
	// directory replays nothing and sees every committed mutation.
	eng, err := keysearch.Open(dataDir, keysearch.WithMutations())
	if err != nil {
		t.Fatalf("reopening state dir after shutdown: %v", err)
	}
	defer eng.Close()
	if n := eng.PendingWALBatches(); n != 0 {
		t.Fatalf("WAL tail of %d batches survived shutdown — final checkpoint did not land", n)
	}
	if eng.Epoch() < 3 {
		t.Fatalf("epoch %d after reopen, want >= 3 (committed mutations lost)", eng.Epoch())
	}
}
