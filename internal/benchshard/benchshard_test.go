package benchshard

import (
	"testing"
	"time"
)

// TestMeasureQuick runs both legs at toy scale: the point is that the
// grid executes, the report carries the guard columns, and the sharded
// leg provably scattered — not that the speedup number means anything
// at 4000 rows on a loaded test host.
func TestMeasureQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("shard grid takes a few seconds")
	}
	rep, err := Measure(Config{
		Quick:        true,
		TargetRows:   4000,
		StepDuration: 300 * time.Millisecond,
		Workers:      4,
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DatasetRows == 0 || rep.WorkloadOps == 0 {
		t.Fatalf("report missing dataset shape: %+v", rep)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("want 1-shard + sharded rows, got %+v", rep.Rows)
	}
	single, sharded := rep.Rows[0], rep.Rows[1]
	if single.Name != "serve-1shard" || sharded.Name != "serve-4shard" {
		t.Fatalf("unexpected leg names: %q %q", single.Name, sharded.Name)
	}
	if single.Shards != 1 || sharded.Shards != 4 || rep.Shards != 4 {
		t.Fatalf("shard counts wrong: %+v", rep.Rows)
	}
	if single.Requests == 0 || sharded.Requests == 0 {
		t.Fatalf("a leg measured nothing: %+v", rep.Rows)
	}
	if single.SpeedupVs1Shard != 0 {
		t.Fatalf("guard column leaked onto the baseline row: %+v", single)
	}
	if sharded.SpeedupVs1Shard <= 0 {
		t.Fatalf("sharded leg missing the guard column: %+v", sharded)
	}
	if rep.SpeedupVs1Shard != sharded.SpeedupVs1Shard {
		t.Fatalf("aggregate speedup %v != row %v", rep.SpeedupVs1Shard, sharded.SpeedupVs1Shard)
	}
	if sharded.Scatters == 0 || sharded.MergedResults == 0 {
		t.Fatalf("sharded leg never exercised the coordinator: %+v", sharded)
	}
}
