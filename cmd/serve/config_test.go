package main

import (
	"flag"
	"strings"
	"testing"
	"time"
)

// parse runs FromFlags over one command line on a fresh FlagSet.
func parse(t *testing.T, args ...string) (*Config, error) {
	t.Helper()
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(discard{})
	return FromFlags(fs, args)
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestFromFlagsKeepsHistoricalNames pins every flag name earlier
// revisions documented: a deployment script written against the loose
// flags must parse unchanged against the consolidated Config.
func TestFromFlagsKeepsHistoricalNames(t *testing.T) {
	cfg, err := parse(t,
		"-addr", ":9090", "-seed", "11", "-db", "", "-ttl", "1m",
		"-max-sessions", "12", "-parallelism", "2",
		"-score-cache=false", "-exec-cache=true", "-answer-cache", "4096",
		"-mutable", "-data-dir", "", "-checkpoint-interval", "10s",
		"-checkpoint-batches", "64", "-shards", "4",
		"-max-concurrent", "8", "-max-queue", "16", "-queue-timeout", "2s",
		"-request-timeout", "5s",
		"-adaptive", "-adapt-min", "3", "-adapt-max", "24", "-adapt-window", "250ms",
	)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != ":9090" || cfg.Seed != 11 || cfg.SessionTTL != time.Minute ||
		cfg.MaxSessions != 12 || cfg.Parallelism != 2 || cfg.ScoreCache ||
		!cfg.ExecCache || cfg.AnswerCacheBytes != 4096 || !cfg.Mutable ||
		cfg.CheckpointInterval != 10*time.Second || cfg.CheckpointBatches != 64 ||
		cfg.Shards != 4 || cfg.MaxConcurrent != 8 || cfg.MaxQueue != 16 ||
		cfg.QueueTimeout != 2*time.Second || cfg.RequestTimeout != 5*time.Second ||
		!cfg.Adaptive || cfg.AdaptMin != 3 || cfg.AdaptMax != 24 ||
		cfg.AdaptWindow != 250*time.Millisecond {
		t.Fatalf("parsed config lost a value: %+v", cfg)
	}
	if got := cfg.AdaptCeiling(); got != 24 {
		t.Fatalf("AdaptCeiling = %d, want 24", got)
	}
}

// TestFromFlagsDefaults pins the zero-argument configuration.
func TestFromFlagsDefaults(t *testing.T) {
	cfg, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != ":8080" || cfg.Seed != 7 || cfg.Shards != 1 ||
		!cfg.ScoreCache || !cfg.ExecCache || cfg.AnswerCacheBytes != 0 ||
		cfg.Mutable || cfg.Adaptive || cfg.MaxConcurrent != 0 {
		t.Fatalf("defaults drifted: %+v", cfg)
	}
	if got := cfg.AdaptCeiling(); got != 0 {
		t.Fatalf("AdaptCeiling with governor off = %d, want 0", got)
	}
	if opts := cfg.EngineOptions(); len(opts) == 0 {
		t.Fatal("no engine options")
	}
	if opts := cfg.ServerOptions(); len(opts) == 0 {
		t.Fatal("no server options")
	}
}

// TestValidateRejections pins the combinations Validate refuses.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-db", "x.dump", "-music"}, "mutually exclusive"},
		{[]string{"-shards", "0"}, "-shards"},
		{[]string{"-answer-cache", "-1"}, "-answer-cache"},
		{[]string{"-answer-cache", "1024", "-exec-cache=false"}, "-exec-cache"},
		{[]string{"-max-concurrent", "-2"}, "-max-concurrent"},
		{[]string{"-adaptive", "-adapt-min", "0"}, "-adapt-min"},
		{[]string{"-adaptive", "-adapt-min", "8", "-adapt-max", "4"}, "-adapt-max"},
		{[]string{"-checkpoint-batches", "0"}, "-checkpoint"},
		{[]string{"-slow-query", "-1s"}, "-slow-query"},
	}
	for _, tc := range cases {
		if _, err := parse(t, tc.args...); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("args %v: err = %v, want mention of %q", tc.args, err, tc.want)
		}
	}
}

// TestObservabilityFlags pins the flag plumbing of the observability
// stack: the query log and the slow-query dump imply tracing, and every
// knob lands in the Config.
func TestObservabilityFlags(t *testing.T) {
	cfg, err := parse(t, "-trace", "-query-log", "/tmp/ql", "-slow-query", "250ms", "-pprof-addr", ":6060")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Trace || cfg.QueryLogDir != "/tmp/ql" || cfg.SlowQuery != 250*time.Millisecond ||
		cfg.PprofAddr != ":6060" {
		t.Fatalf("observability flags lost a value: %+v", cfg)
	}

	// -query-log alone implies tracing.
	cfg, err = parse(t, "-query-log", "/tmp/ql")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Trace {
		t.Fatal("-query-log did not imply -trace")
	}

	// -slow-query alone implies tracing.
	cfg, err = parse(t, "-slow-query", "1ms")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Trace {
		t.Fatal("-slow-query did not imply -trace")
	}

	// Default: everything off.
	cfg, err = parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Trace || cfg.QueryLogDir != "" || cfg.SlowQuery != 0 || cfg.PprofAddr != "" {
		t.Fatalf("observability not off by default: %+v", cfg)
	}
}
