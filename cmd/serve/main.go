// Command serve runs the keyword-search engine as an HTTP JSON service
// over one of the bundled demo datasets (or a database dump written by
// Engine.SaveTo).
//
// Usage:
//
//	go run ./cmd/serve [-addr :8080] [-seed N] [-music] [-db dump] [-ttl 15m] [-mutable]
//
// Quickstart:
//
//	go run ./cmd/serve -mutable &
//	curl -s localhost:8080/v1/search -d '{"query":"hanks","k":3}'
//	curl -s localhost:8080/v1/construct -d '{"action":"start","start":{"query":"hanks","stop_at_remaining":1}}'
//	curl -s localhost:8080/v1/mutate -d '{"mutations":[{"op":"insert","table":"actor","values":["a9001","Nora Ephron"]}]}'
//
// See package repro/httpapi for the endpoint and session protocol, and
// docs/mutations.md for the live-mutation snapshot model.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	keysearch "repro"
	"repro/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 7, "demo dataset generator seed")
	music := flag.Bool("music", false, "serve the music (lyrics) dataset instead of movies")
	dbPath := flag.String("db", "", "serve a database dump written by Engine.SaveTo instead of a demo dataset")
	ttl := flag.Duration("ttl", 15*time.Minute, "construction session idle TTL")
	maxSessions := flag.Int("max-sessions", 1024, "cap on live construction sessions")
	parallelism := flag.Int("parallelism", 0, "pipeline worker count (0 = GOMAXPROCS, 1 = sequential)")
	scoreCache := flag.Bool("score-cache", true, "memoise score sub-terms across requests")
	execCache := flag.Bool("exec-cache", true, "share keyword selections across the plans of one request")
	mutable := flag.Bool("mutable", false, "enable live mutations via POST /v1/mutate (snapshot-isolated)")
	flag.Parse()

	opts := []keysearch.Option{
		keysearch.WithCoOccurrence(),
		keysearch.WithParallelism(*parallelism),
		keysearch.WithScoreCache(*scoreCache),
		keysearch.WithExecutionCache(*execCache),
	}
	if *mutable {
		opts = append(opts, keysearch.WithMutations())
	}
	var (
		eng *keysearch.Engine
		err error
	)
	switch {
	case *dbPath != "":
		f, ferr := os.Open(*dbPath)
		if ferr != nil {
			log.Fatal(ferr)
		}
		eng, err = keysearch.Load(f, opts...)
		f.Close()
	case *music:
		// The 5-table chain schema needs join paths of length 5.
		eng, err = keysearch.DemoMusicWith(*seed, opts...)
	default:
		eng, err = keysearch.DemoMoviesWith(*seed, opts...)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("engine ready: %d tables, %d rows, %d query templates, parallelism %d, mutable %v",
		eng.NumTables(), eng.NumRows(), eng.NumTemplates(), eng.Parallelism(), eng.MutationsEnabled())

	srv := httpapi.New(eng,
		httpapi.WithSessionTTL(*ttl),
		httpapi.WithMaxSessions(*maxSessions),
	)
	log.Printf("serving on %s (try: curl -s localhost%s/v1/search -d '{\"query\":\"hanks\",\"k\":3}')",
		*addr, *addr)
	log.Fatal(http.ListenAndServe(*addr, logRequests(srv)))
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
