package datagraph

import (
	"fmt"
	"sort"

	"repro/internal/durable"
	"repro/internal/relstore"
)

// This file implements the data graph's snapshot codec. The engine
// persists a graph only when it was materialised at save time (the
// graph is lazy — SearchTrees builds it on first use), so a warm
// BANKS-style baseline stays warm across a restart without forcing
// cold deployments to pay the build.
//
// Table names are interned against the database's table list and nodes
// encoded as (table index, row) pairs; adjacency keys, neighbour lists,
// and containment tokens are all written in canonical sorted order, so
// the encoding is deterministic and a decoded graph re-encodes
// byte-identically.

// EncodeSnapshot appends the graph's snapshot encoding to e.
func (g *Graph) EncodeSnapshot(e *durable.Enc) {
	names := g.db.TableNames()
	tableIdx := make(map[string]int, len(names))
	for i, n := range names {
		tableIdx[n] = i
	}
	encodeNode := func(n Node) {
		e.Uvarint(uint64(tableIdx[n.Table]))
		e.Uvarint(uint64(n.Row))
	}

	keys := make([]Node, 0, len(g.adj))
	for n := range g.adj {
		keys = append(keys, n)
	}
	sort.Slice(keys, func(i, j int) bool { return nodeLess(keys[i], keys[j]) })
	e.Uvarint(uint64(len(keys)))
	for _, n := range keys {
		encodeNode(n)
		nbrs := g.adj[n] // already in canonical order, duplicates preserved
		e.Uvarint(uint64(len(nbrs)))
		for _, nbr := range nbrs {
			encodeNode(nbr)
		}
	}

	toks := make([]string, 0, len(g.containing))
	for tok := range g.containing {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	e.Uvarint(uint64(len(toks)))
	for _, tok := range toks {
		e.String(tok)
		nodes := g.containing[tok]
		e.Uvarint(uint64(len(nodes)))
		for _, n := range nodes {
			encodeNode(n)
		}
	}
}

// DecodeSnapshot reconstructs a graph over db from its snapshot
// encoding.
func DecodeSnapshot(d *durable.Dec, db *relstore.Database) (*Graph, error) {
	names := db.TableNames()
	decodeNode := func() (Node, bool) {
		ti := int(d.Uvarint())
		row := int(d.Uvarint())
		if d.Err() != nil || ti < 0 || ti >= len(names) {
			return Node{}, false
		}
		return Node{Table: names[ti], Row: row}, true
	}
	g := &Graph{
		db:         db,
		adj:        make(map[Node][]Node),
		containing: make(map[string][]Node),
	}

	nadj := int(d.Uvarint())
	for i := 0; i < nadj && d.Err() == nil; i++ {
		n, ok := decodeNode()
		if !ok {
			return nil, fmt.Errorf("datagraph: decode snapshot: bad adjacency node")
		}
		nnbrs := int(d.Uvarint())
		nbrs := make([]Node, 0, min(nnbrs, d.Remaining()))
		for j := 0; j < nnbrs && d.Err() == nil; j++ {
			nbr, ok := decodeNode()
			if !ok {
				return nil, fmt.Errorf("datagraph: decode snapshot: bad neighbour of %s", n)
			}
			nbrs = append(nbrs, nbr)
		}
		g.adj[n] = nbrs
	}

	ntoks := int(d.Uvarint())
	for i := 0; i < ntoks && d.Err() == nil; i++ {
		tok := d.String()
		nnodes := int(d.Uvarint())
		nodes := make([]Node, 0, min(nnodes, d.Remaining()))
		for j := 0; j < nnodes && d.Err() == nil; j++ {
			n, ok := decodeNode()
			if !ok {
				return nil, fmt.Errorf("datagraph: decode snapshot: bad containment node for %q", tok)
			}
			nodes = append(nodes, n)
		}
		g.containing[tok] = nodes
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("datagraph: decode snapshot: %w", err)
	}
	return g, nil
}
