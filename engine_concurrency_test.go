package keysearch

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/query"
)

// TestConcurrentSearchSharedEngine exercises the immutable-after-Build
// contract: one built Engine serves many goroutines running every query
// entry point at once. Run with -race.
func TestConcurrentSearchSharedEngine(t *testing.T) {
	eng, err := DemoMovies(7)
	if err != nil {
		t.Fatal(err)
	}
	queries := eng.SampleQueries(6)
	if len(queries) == 0 {
		t.Fatal("no sample queries")
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*4*len(queries))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, q := range queries {
				if _, err := eng.Search(bg, SearchRequest{Query: q, K: 3, RowLimit: 1}); err != nil {
					errs <- err
				}
				if _, err := eng.Diversify(bg, DiversifyRequest{Query: q, K: 3, Lambda: 0.1}); err != nil {
					errs <- err
				}
				// SearchTrees races the lazy data-graph build on first use.
				if _, err := eng.SearchTrees(bg, q, 2); err != nil {
					errs <- err
				}
				if ks := eng.Keywords(q[:1], 5); len(ks) == 0 {
					errs <- errors.New("no keywords for prefix " + q[:1])
				}
				// Each goroutine drives its own construction session.
				if (w+i)%3 == 0 {
					sess, err := eng.Construct(bg, ConstructRequest{Query: q, StopAtRemaining: 3})
					if err != nil {
						errs <- err
						continue
					}
					for !sess.Done() {
						question, ok := sess.Next()
						if !ok {
							break
						}
						if err := sess.Reject(bg, question); err != nil {
							errs <- err
							break
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCancelledContextAborts proves an already-cancelled context aborts
// every pipeline stage early, including interpretation materialisation.
func TestCancelledContextAborts(t *testing.T) {
	eng := builtEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := eng.Search(ctx, SearchRequest{Query: "london", K: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Search error = %v, want context.Canceled", err)
	}
	if _, err := eng.Diversify(ctx, DiversifyRequest{Query: "london", K: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Diversify error = %v, want context.Canceled", err)
	}
	if _, err := eng.SearchRows(ctx, RowsRequest{Query: "london", K: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchRows error = %v, want context.Canceled", err)
	}
	if _, err := eng.SearchTrees(ctx, "london", 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchTrees error = %v, want context.Canceled", err)
	}
	if _, err := eng.Construct(ctx, ConstructRequest{Query: "london 2010"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Construct error = %v, want context.Canceled", err)
	}

	// Target the materialisation stage directly: candidates generated
	// under a live context, the interpretation space materialised under a
	// cancelled one.
	c, _, err := eng.candidatesFor(context.Background(), eng.current(), "london 2010")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := query.GenerateCompleteContext(ctx, c, eng.current().cat, query.GenerateConfig{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("GenerateCompleteContext error = %v, want context.Canceled", err)
	}
	if _, err := eng.current().model.RankContext(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("RankContext error = %v, want context.Canceled", err)
	}
}

// TestExpiredDeadlineAborts covers the deadline flavour of cancellation.
func TestExpiredDeadlineAborts(t *testing.T) {
	eng := builtEngine(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := eng.Search(ctx, SearchRequest{Query: "london"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Search error = %v, want context.DeadlineExceeded", err)
	}
}

// TestCancelledAnswerKeepsSessionUsable: a cancelled Accept reports the
// error, and the session still finishes under a live context.
func TestCancelledAnswerKeepsSessionUsable(t *testing.T) {
	eng := builtEngine(t)
	sess, err := eng.Construct(bg, ConstructRequest{Query: "london 2010", StopAtRemaining: 1})
	if err != nil {
		t.Fatal(err)
	}
	question, ok := sess.Next()
	if !ok {
		t.Skip("query converged without questions")
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	// The decision is recorded even when the follow-up expansion is
	// cancelled; the error must surface.
	_ = sess.Reject(cancelled, question)
	for !sess.Done() {
		q, ok := sess.Next()
		if !ok {
			break
		}
		if err := sess.Reject(bg, q); err != nil {
			t.Fatal(err)
		}
	}
	_ = sess.Candidates() // must not panic
}
