// Command loadtest drives the keyword-search serving path with the
// mixed loadgen workload and prints latency percentiles, throughput,
// and shed counts. By default it is self-contained: it generates a
// dataset (datagen, deterministic per seed), builds the engine, stands
// up the real HTTP server in-process, and drives it over loopback.
// With -url it drives an external server instead (start one with
// cmd/serve; use matching -rows/-seed so the workload queries hit).
//
// Usage:
//
//	go run ./cmd/loadtest [-rows 100000] [-seed 42] [-music] [-ops 512]
//	                      [-workers 16] [-rate 0] [-duration 10s]
//	                      [-shards 1] [-max-concurrent 0] [-max-queue 0]
//	                      [-queue-timeout 1s] [-request-timeout 0]
//	                      [-saturate] [-url http://host:8080] [-json]
//
// -shards N stands the in-process server up over an N-shard
// scatter-gather coordinator (keysearch.NewShardedEngine) instead of
// the bare engine — responses are byte-identical, so the comparison
// isolates the serving topology's cost and parallelism.
//
// -rate > 0 selects open-loop mode (fixed arrival schedule, latencies
// measured from scheduled arrival — coordinated-omission honest);
// otherwise the run is closed-loop with -workers concurrent clients.
// -saturate replaces the single run with a concurrency ramp that
// reports the saturation throughput. The admission flags gate the
// in-process server exactly like cmd/serve's flags gate a real one.
//
// Examples:
//
//	# closed-loop, 100k rows, 16 workers, 10s
//	go run ./cmd/loadtest -rows 100000 -workers 16 -duration 10s
//
//	# find the saturation point of a gated server
//	go run ./cmd/loadtest -rows 100000 -max-concurrent 8 -max-queue 16 -saturate
//
//	# open-loop at 200 req/s against an external server
//	go run ./cmd/serve -addr :8080 &
//	go run ./cmd/loadtest -url http://localhost:8080 -rate 200 -duration 30s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"time"

	keysearch "repro"
	"repro/httpapi"
	"repro/internal/loadgen"
)

func main() {
	rows := flag.Int("rows", 100000, "generated dataset size in rows")
	seed := flag.Int64("seed", 42, "dataset and workload generator seed")
	music := flag.Bool("music", false, "use the music (lyrics) chain schema instead of movies")
	numOps := flag.Int("ops", 512, "distinct workload operations to cycle through")
	workers := flag.Int("workers", 16, "closed-loop concurrency (open-loop: outstanding-request cap)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed-loop)")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	maxConcurrent := flag.Int("max-concurrent", 0, "gate the server: concurrently executing requests (0 = ungated)")
	maxQueue := flag.Int("max-queue", 0, "gate the server: wait-queue bound")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "gate the server: longest queue wait before a 503 shed")
	requestTimeout := flag.Duration("request-timeout", 0, "server-side default per-request deadline (0 = none)")
	shards := flag.Int("shards", 1, "serve through an N-shard scatter-gather coordinator (1 = single-process)")
	saturate := flag.Bool("saturate", false, "run a saturation ramp instead of a single run")
	url := flag.String("url", "", "drive this external server instead of an in-process one")
	asJSON := flag.Bool("json", false, "print the result as JSON")
	flag.Parse()

	kind := loadgen.KindMovies
	if *music {
		kind = loadgen.KindMusic
	}
	dcfg := loadgen.DatasetConfig{Kind: kind, TargetRows: *rows, Seed: *seed}

	log.Printf("generating %s dataset (~%d rows, seed %d)...", kind, *rows, *seed)
	db, err := loadgen.BuildDataset(dcfg)
	if err != nil {
		log.Fatal(err)
	}
	ops, err := loadgen.BuildWorkload(db, kind, loadgen.WorkloadConfig{Ops: *numOps, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	base := *url
	if base == "" {
		log.Printf("building engine over %d rows...", db.NumRows())
		start := time.Now()
		eng, err := loadgen.BuildEngine(dcfg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("engine ready in %v (%d tables, %d templates)", time.Since(start).Round(time.Millisecond),
			eng.NumTables(), eng.NumTemplates())
		var topo keysearch.Searcher = eng
		if *shards > 1 {
			se, err := keysearch.NewShardedEngine(*shards, eng)
			if err != nil {
				log.Fatal(err)
			}
			topo = se
			log.Printf("topology: %d-shard scatter-gather coordinator", *shards)
		}
		ts := httptest.NewServer(httpapi.New(topo,
			httpapi.WithAdmission(httpapi.AdmissionConfig{
				MaxConcurrent: *maxConcurrent,
				MaxQueue:      *maxQueue,
				QueueTimeout:  *queueTimeout,
			}),
			httpapi.WithRequestTimeout(*requestTimeout),
		))
		defer ts.Close()
		base = ts.URL
	}

	ctx := context.Background()
	if *saturate {
		sat, err := loadgen.FindSaturation(ctx, loadgen.SaturationOptions{
			Base:         loadgen.Options{BaseURL: base, Ops: ops},
			StepDuration: *duration / 4,
			MaxWorkers:   max(*workers, 8),
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, step := range sat.Steps {
			log.Printf("  %s", step)
		}
		if *asJSON {
			printJSON(sat)
			return
		}
		fmt.Printf("saturation: %.0f req/s at %d workers\n", sat.SaturationRPS, sat.AtWorkers)
		return
	}

	res, err := loadgen.Run(ctx, loadgen.Options{
		BaseURL:  base,
		Ops:      ops,
		Workers:  *workers,
		RateRPS:  *rate,
		Duration: *duration,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		printJSON(res)
		return
	}
	fmt.Println(res)
	for _, k := range res.SortedKinds() {
		ks := res.PerKind[k]
		fmt.Printf("  %-10s n=%-7d err=%-5d shed=%d/%d 504=%-4d p50=%8.1fms p90=%8.1fms p99=%8.1fms max=%8.1fms\n",
			k, ks.Requests, ks.Errors, ks.Shed429, ks.Shed503, ks.Deadline504, ks.P50MS, ks.P90MS, ks.P99MS, ks.MaxMS)
	}
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}
