package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// This file implements the mutation write-ahead log. The on-disk format
// is a sequence of self-delimiting records:
//
//	u32  payload length (little-endian)
//	u32  CRC-32C of the payload
//	u64  epoch (little-endian) ─┐
//	...  body                   ├─ the checksummed payload
//	                            ─┘
//
// A record is appended with one write followed by fsync, before the
// engine publishes the batch's snapshot, so every acknowledged batch is
// recoverable. Crash tolerance is prefix-based: a torn final record —
// any truncation or bit corruption of the tail — is detected by the
// length/CRC framing, and recovery keeps the longest valid prefix. The
// epoch stamp ties each record to the snapshot it produced, which lets
// recovery skip records already folded into a checkpointed snapshot and
// detect gaps (missing records) as corruption.

// walHeaderSize is the fixed per-record framing overhead (length + CRC).
const walHeaderSize = 8

// maxWALRecord bounds a single record's payload; a declared length
// beyond it is treated as a torn/corrupt tail rather than an
// allocation request.
const maxWALRecord = 1 << 30

// Record is one recovered WAL entry.
type Record struct {
	// Epoch is the snapshot epoch the logged batch committed as.
	Epoch uint64
	// Body is the batch encoding (opaque to this package).
	Body []byte
}

// WAL is an append-only mutation log. Appends are serialised by the
// caller (the engine holds its writer lock across Append); Sync-per-
// append is the default durability contract.
type WAL struct {
	f    *os.File
	path string
	sync bool
	// size is the byte length of the valid record prefix — everything
	// before it is durable, everything after it is rolled back when an
	// append fails partway.
	size int64
	// records counts appends since open or the last Reset.
	records int
	// broken latches when a failed append could not be rolled back: the
	// log's tail state is then unknown, and accepting further appends
	// could lose an acknowledged batch behind a torn record. Every later
	// Append fails until the log is re-opened (which re-truncates).
	broken bool
}

// RecoverWAL opens (creating if absent) the log at path, scans the
// longest valid record prefix, truncates any torn tail so subsequent
// appends extend a clean log, and returns the recovered records. sync
// selects fsync-per-append.
func RecoverWAL(path string, sync bool) (*WAL, []Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("durable: read wal: %w", err)
	}
	recs, valid := ScanWAL(raw)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: open wal: %w", err)
	}
	if int64(valid) < int64(len(raw)) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("durable: truncate torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("durable: seek wal: %w", err)
	}
	return &WAL{f: f, path: path, sync: sync, size: int64(valid), records: len(recs)}, recs, nil
}

// ScanWAL decodes the longest valid record prefix of raw, returning the
// records and the byte length of that prefix. It never fails: anything
// after the first torn or corrupt record is ignored, which is exactly
// the recovery semantics of a crash mid-append.
func ScanWAL(raw []byte) ([]Record, int) {
	var recs []Record
	off := 0
	for {
		rest := raw[off:]
		if len(rest) < walHeaderSize {
			return recs, off
		}
		n := binary.LittleEndian.Uint32(rest)
		crc := binary.LittleEndian.Uint32(rest[4:])
		if n < 8 || n > maxWALRecord || int(n) > len(rest)-walHeaderSize {
			return recs, off
		}
		payload := rest[walHeaderSize : walHeaderSize+int(n)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return recs, off
		}
		recs = append(recs, Record{
			Epoch: binary.LittleEndian.Uint64(payload),
			Body:  payload[8:],
		})
		off += walHeaderSize + int(n)
	}
}

// AppendRecord frames one record into buf (for tests and size
// accounting the engine layer shares with Append).
func AppendRecord(buf []byte, epoch uint64, body []byte) []byte {
	payloadLen := 8 + len(body)
	var hdr [walHeaderSize + 8]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(payloadLen))
	binary.LittleEndian.PutUint64(hdr[walHeaderSize:], epoch)
	crc := crc32.Update(0, castagnoli, hdr[walHeaderSize:])
	crc = crc32.Update(crc, castagnoli, body)
	binary.LittleEndian.PutUint32(hdr[4:], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, body...)
}

// Append durably logs one record: a single write of the framed record
// followed by fsync (unless sync is disabled). The caller must not
// publish the corresponding snapshot until Append returns nil.
//
// A failed append is rolled back by truncating the file to the last
// valid prefix, so the log never holds a record for a batch the caller
// did not acknowledge (such a record would be replayed on recovery and
// could shadow a later retry logged under the same epoch). If the
// rollback itself fails, the log latches broken and refuses further
// appends — loud failure instead of silent loss.
func (w *WAL) Append(epoch uint64, body []byte) error {
	if w.broken {
		return fmt.Errorf("durable: wal is broken after an unrecoverable append failure; re-open to recover")
	}
	// ScanWAL treats any record over maxWALRecord as a torn tail, so an
	// oversized record must be rejected here — before it is written and
	// acknowledged — or recovery would silently truncate it away together
	// with every record logged after it.
	if len(body) > maxWALRecord-8 {
		return fmt.Errorf("durable: wal record of %d bytes exceeds the %d-byte bound", len(body), maxWALRecord-8)
	}
	frame := AppendRecord(nil, epoch, body)
	_, werr := w.f.Write(frame)
	if werr == nil && w.sync {
		werr = w.f.Sync()
	}
	if werr != nil {
		if terr := w.rollback(); terr != nil {
			w.broken = true
			return fmt.Errorf("durable: wal append: %w (rollback also failed: %v)", werr, terr)
		}
		return fmt.Errorf("durable: wal append: %w", werr)
	}
	w.size += int64(len(frame))
	w.records++
	return nil
}

// rollback truncates the file back to the valid prefix after a failed
// append (fsync included: a truncate that is not on disk protects
// nothing).
func (w *WAL) rollback() error {
	if err := w.f.Truncate(w.size); err != nil {
		return err
	}
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		return err
	}
	return w.f.Sync()
}

// Records returns the number of records in the log (recovered + appended
// since the last Reset).
func (w *WAL) Records() int { return w.records }

// Reset truncates the log to empty — called after a checkpoint has made
// its records redundant. The caller serialises Reset against Append. A
// successful Reset also clears a broken log: empty is a known state.
func (w *WAL) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: wal reset: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("durable: wal reset seek: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("durable: wal reset sync: %w", err)
		}
	}
	w.size = 0
	w.records = 0
	w.broken = false
	return nil
}

// SetRecords overrides the record count — used by recovery when some
// scanned records were already folded into the snapshot and must not be
// reported as pending.
func (w *WAL) SetRecords(n int) { w.records = n }

// Close flushes and closes the log file. Safe to call twice.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	f := w.f
	w.f = nil
	if w.sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("durable: wal close sync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: wal close: %w", err)
	}
	return nil
}

// SyncDir fsyncs a directory so a just-renamed file inside it survives a
// crash. Best effort: some platforms reject directory fsync, which is
// reported as nil because the rename itself is still atomic.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory, fsyncs it, and renames it into place, so readers (and
// crash recovery) only ever observe the old or the new complete file.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("durable: create temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: sync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("durable: close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("durable: rename into place: %w", err)
	}
	return SyncDir(dir)
}
