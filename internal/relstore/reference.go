package relstore

import (
	"fmt"
)

// This file retains the original scan-based evaluation paths as reference
// implementations. They compute selections by tokenizing every cell and
// execute join plans with map-based candidate membership — exactly the
// semantics the posting-list engine must reproduce — and exist so that
// differential tests and the executor benchmark can compare the optimised
// paths against a straightforward oracle. They are not used on any
// serving path.

// SelectContainsScan is the scan-based reference of SelectContains: it
// tokenizes every row value and applies the bag-containment predicate
// row by row. The column position is resolved once, outside the row loop.
func (t *Table) SelectContainsScan(column string, keywords []string) []int {
	ci := t.Schema.ColumnIndex(column)
	if ci < 0 {
		return nil
	}
	var out []int
	for _, r := range t.rows {
		if !t.Live(r.RowID) {
			continue
		}
		if ContainsBag(r.Values[ci], keywords) {
			out = append(out, r.RowID)
		}
	}
	return out
}

// candidateRowsScan is the scan-based reference of the per-node candidate
// computation: rows satisfying all predicates, all rows when
// unconstrained. Predicate columns are resolved once before the row loop;
// a predicate naming an unknown column matches nothing.
func (t *Table) candidateRowsScan(preds []Predicate) []int {
	if len(preds) == 0 {
		return t.allRowIDs()
	}
	cols := make([]int, len(preds))
	for i, p := range preds {
		cols[i] = t.Schema.ColumnIndex(p.Column)
		if cols[i] < 0 {
			return nil
		}
	}
	var out []int
rows:
	for _, r := range t.rows {
		if !t.Live(r.RowID) {
			continue
		}
		for i, p := range preds {
			if !ContainsBag(r.Values[cols[i]], p.Keywords) {
				continue rows
			}
		}
		out = append(out, r.RowID)
	}
	return out
}

// ExecuteScan is the original scan-based executor, retained as the
// reference implementation: per-node candidates by full table scans,
// map[int]bool candidate membership, no semi-join pruning, string-keyed
// column resolution per joined row. Execute must produce the identical
// JTT sequence (differential tests enforce this); ExecuteScan is the
// baseline the executor benchmark measures speedups against.
// opts.Cache is ignored — the scan path memoises nothing.
func (db *Database) ExecuteScan(p *JoinPlan, opts ExecuteOptions) ([]JTT, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Nodes)
	cands := make([][]int, n)
	for i, node := range p.Nodes {
		t := db.Table(node.Table)
		if t == nil {
			return nil, fmt.Errorf("relstore: join plan references unknown table %s", node.Table)
		}
		cands[i] = t.candidateRowsScan(node.Predicates)
		if len(cands[i]) == 0 {
			return nil, nil
		}
	}

	root := 0
	for i := 1; i < n; i++ {
		if len(cands[i]) < len(cands[root]) {
			root = i
		}
	}

	type halfEdge struct {
		to             int
		fromCol, toCol string
	}
	adj := make([][]halfEdge, n)
	for _, e := range p.Edges {
		ft := db.Table(p.Nodes[e.From].Table)
		tt := db.Table(p.Nodes[e.To].Table)
		if ft.Schema.ColumnIndex(e.FromColumn) < 0 || tt.Schema.ColumnIndex(e.ToColumn) < 0 {
			return nil, fmt.Errorf("relstore: join edge %s.%s=%s.%s references unknown column",
				p.Nodes[e.From].Table, e.FromColumn, p.Nodes[e.To].Table, e.ToColumn)
		}
		adj[e.From] = append(adj[e.From], halfEdge{to: e.To, fromCol: e.FromColumn, toCol: e.ToColumn})
		adj[e.To] = append(adj[e.To], halfEdge{to: e.From, fromCol: e.ToColumn, toCol: e.FromColumn})
	}

	// Per-node candidate membership for filtering joined rows.
	member := make([]map[int]bool, n)
	for i := range cands {
		m := make(map[int]bool, len(cands[i]))
		for _, id := range cands[i] {
			m[id] = true
		}
		member[i] = m
	}

	// DFS order from root over the tree.
	type scanStep struct {
		node, parent   int
		parentCol, col string
	}
	order := make([]scanStep, 0, n)
	visited := make([]bool, n)
	var build func(v, parent int, pc, c string)
	build = func(v, parent int, pc, c string) {
		visited[v] = true
		order = append(order, scanStep{node: v, parent: parent, parentCol: pc, col: c})
		for _, he := range adj[v] {
			if !visited[he.to] {
				build(he.to, v, he.fromCol, he.toCol)
			}
		}
	}
	build(root, -1, "", "")

	var results []JTT
	assign := make([]int, n)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(order) {
			row := make([]int, n)
			copy(row, assign)
			results = append(results, JTT{Rows: row})
			return opts.Limit > 0 && len(results) >= opts.Limit
		}
		st := order[k]
		var choices []int
		if st.parent < 0 {
			choices = cands[st.node]
		} else {
			pt := db.Table(p.Nodes[st.parent].Table)
			pv, _ := pt.Value(assign[st.parent], st.parentCol)
			ct := db.Table(p.Nodes[st.node].Table)
			for _, id := range ct.LookupEqual(st.col, pv) {
				if member[st.node][id] {
					choices = append(choices, id)
				}
			}
		}
		for _, id := range choices {
			assign[st.node] = id
			if rec(k + 1) {
				return true
			}
		}
		return false
	}
	rec(0)
	return results, nil
}
