package keysearch

import (
	"context"

	"repro/internal/core"
	"repro/internal/query"
)

// ConstructRequest starts an incremental construction session (the IQP
// interface of Chapter 3). The same DTO drives the library API and the
// "start" action of POST /v1/construct.
type ConstructRequest struct {
	// Query is the keyword query to construct an interpretation for.
	Query string `json:"query"`
	// Threshold is the greedy hierarchy-expansion threshold (default 20).
	Threshold int `json:"threshold,omitempty"`
	// StopAtRemaining ends construction when at most this many candidate
	// queries remain (default 5).
	StopAtRemaining int `json:"stop_at_remaining,omitempty"`
}

// Question is one query construction option presented to the user during
// incremental construction ("Is «hanks» an actor's name?").
type Question struct {
	// Text is the human-readable question.
	Text string `json:"text"`

	opt query.Option
}

// Construction is an interactive incremental query construction session:
// the system asks questions, the user accepts or rejects them, and the
// candidate structured queries narrow until the intended one is isolated.
//
// A Construction belongs to one client dialogue and is not safe for
// concurrent use; run any number of independent sessions concurrently on
// one Engine instead. The HTTP front-end (repro/httpapi) exposes sessions
// behind server-side session IDs with TTL eviction.
type Construction struct {
	eng  *Engine
	snap *snapshot
	sess *core.Session
}

// Construct starts an incremental construction session for the keyword
// query. The context cancels the initial hierarchy expansion. The
// session pins the engine snapshot current at its start: a dialogue
// spanning mutation batches keeps answering against the consistent view
// it began on (snapshot isolation at session granularity).
func (e *Engine) Construct(ctx context.Context, req ConstructRequest) (*Construction, error) {
	s := e.current()
	c, _, err := e.candidatesFor(ctx, s, req.Query)
	if err != nil {
		return nil, err
	}
	sess, err := core.NewSessionContext(ctx, s.model, c, core.SessionConfig{
		Threshold:       req.Threshold,
		StopAtRemaining: req.StopAtRemaining,
	})
	if err != nil {
		return nil, err
	}
	return &Construction{eng: e, snap: s, sess: sess}, nil
}

// Done reports whether construction has converged to at most
// StopAtRemaining candidates.
func (c *Construction) Done() bool { return c.sess.Done() }

// Steps returns the number of questions answered so far — the interaction
// cost of the session.
func (c *Construction) Steps() int { return c.sess.Steps() }

// Next returns the next question, or ok=false when no question can narrow
// the candidates further (pick from Candidates instead).
func (c *Construction) Next() (Question, bool) {
	opt, ok := c.sess.NextOption()
	if !ok {
		return Question{}, false
	}
	return Question{Text: opt.Describe(), opt: opt}, true
}

// Accept confirms that the question's interpretation is part of the
// intended query. The context cancels the hierarchy expansion the answer
// may trigger; on cancellation the decision is recorded but the expansion
// is left for the next call.
func (c *Construction) Accept(ctx context.Context, q Question) error {
	return c.sess.AcceptContext(ctx, q.opt)
}

// Reject states that the question's interpretation is not part of the
// intended query.
func (c *Construction) Reject(ctx context.Context, q Question) error {
	return c.sess.RejectContext(ctx, q.opt)
}

// Candidates returns the currently remaining structured queries, ranked
// by probability (empty until the interpretation space is materialised).
func (c *Construction) Candidates() []Result {
	return c.eng.wrap(c.snap, c.sess.Remaining())
}
