# Developer entry points. CI runs the same targets, so local and CI
# behaviour cannot drift.

GO ?= go

.PHONY: build test race vet fuzz bench bench-quick golden check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fuzz gives every fuzz target a short budget on top of the seed corpus.
fuzz:
	$(GO) test -fuzz FuzzNormalizeKeywords -fuzztime 30s ./internal/query

# bench writes the pipeline benchmark grid to BENCH_pipeline.json — the
# perf-trajectory artifact CI archives on every run.
bench:
	$(GO) run ./cmd/bench -out BENCH_pipeline.json

bench-quick:
	$(GO) run ./cmd/bench -quick -out BENCH_pipeline.json

# golden regenerates testdata/golden after an intentional ranking change.
# Plain `make test` fails if golden files drift without this.
golden:
	$(GO) test -run TestGolden . -update

check: vet build race
