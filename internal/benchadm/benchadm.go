// Package benchadm measures the adaptive admission governor against
// its two fixed points: a static gate hand-placed at the measured
// saturation knee (the best an omniscient operator can configure) and
// an ungated server (what overload does with no protection at all).
// All three are driven with the same 8x-oversubscribed closed-loop
// workload over the same generated dataset, behind the real HTTP
// serving path.
//
// The machine-transferable column is goodput_vs_static_knee on the
// adaptive leg: goodput under the governor — which was told nothing
// but a floor and a generous ceiling — divided by goodput under the
// hand-tuned static gate. On a working governor the ratio stays near
// 1: the control loop discovers the knee the operator had to measure.
// Like the other bench ratios it is computed within one run on one
// machine, so it transfers across hosts where raw req/s does not.
//
// The report also records the governor's own telemetry after the run
// (converged limit, window decisions, per-cost-band shed counters), so
// the artifact shows not just that goodput held but how: backoffs
// happened, the limit stayed inside its bounds, and the cheap cost
// band was shed at a lower rate than the heavy one.
package benchadm

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/httpapi"
	"repro/internal/admission"
	"repro/internal/loadgen"
)

// Config sizes the admission measurement.
type Config struct {
	// TargetRows is the generated dataset size (default 1,000,000;
	// quick mode 25,000).
	TargetRows int
	// Seed fixes dataset and workload generation (default 42).
	Seed int64
	// StepDuration is the length of each saturation-ramp step; each
	// overload leg runs twice as long (default 5s; quick 700ms).
	StepDuration time.Duration
	// MaxWorkers bounds the saturation ramp and sets the governor's
	// concurrency ceiling (default 128; quick 16).
	MaxWorkers int
	// Window is the governor's control-loop window (default 500ms;
	// quick 200ms).
	Window time.Duration
	// Quick selects the CI-sized variant of all defaults.
	Quick bool
}

func (c *Config) defaults() {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.TargetRows <= 0 {
		if c.Quick {
			c.TargetRows = 25000
		} else {
			c.TargetRows = 1000000
		}
	}
	if c.StepDuration <= 0 {
		if c.Quick {
			c.StepDuration = 700 * time.Millisecond
		} else {
			c.StepDuration = 5 * time.Second
		}
	}
	if c.MaxWorkers <= 0 {
		if c.Quick {
			c.MaxWorkers = 16
		} else {
			c.MaxWorkers = 128
		}
	}
	if c.Window <= 0 {
		if c.Quick {
			c.Window = 200 * time.Millisecond
		} else {
			c.Window = 500 * time.Millisecond
		}
	}
}

// Row is one measured leg of BENCH_admission.json.
type Row struct {
	Name          string  `json:"name"`
	Mode          string  `json:"mode"`
	Workers       int     `json:"workers"`
	Requests      int64   `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	GoodputRPS    float64 `json:"goodput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	MaxMS         float64 `json:"max_ms"`
	Shed429       int64   `json:"shed_429,omitempty"`
	Shed503       int64   `json:"shed_503,omitempty"`
	Deadline504   int64   `json:"deadline_504,omitempty"`
	Errors        int64   `json:"errors,omitempty"`
	// GoodputVsStaticKnee is the transferable guard column, set on the
	// adaptive leg only: goodput under the governor divided by goodput
	// under a static gate hand-placed at the measured knee. ≈1 when the
	// control loop finds the knee on its own.
	GoodputVsStaticKnee float64 `json:"goodput_vs_static_knee,omitempty"`
}

// GovernorOutcome is the governor's own view after the adaptive leg.
type GovernorOutcome struct {
	admission.ControllerState
	AvgServiceMS float64               `json:"avg_service_ms"`
	Bands        []admission.BandStats `json:"bands"`
	// CheapShedRate / HeavyShedRate are sheds/(sheds+admitted) of the
	// cheapest and heaviest cost bands: cost-aware shedding keeps the
	// cheap rate below the heavy one.
	CheapShedRate float64 `json:"cheap_shed_rate"`
	HeavyShedRate float64 `json:"heavy_shed_rate"`
}

// Report is the top-level shape of BENCH_admission.json (wrapped with
// host metadata by cmd/bench).
type Report struct {
	Dataset       string          `json:"dataset"`
	DatasetRows   int             `json:"dataset_rows"`
	WorkloadOps   int             `json:"workload_ops"`
	SaturationRPS float64         `json:"saturation_rps"`
	AtWorkers     int             `json:"saturation_workers"`
	Governor      GovernorOutcome `json:"governor"`
	Rows          []Row           `json:"rows"`
}

func row(name string, r *loadgen.Result) Row {
	return Row{
		Name:          name,
		Mode:          r.Mode,
		Workers:       r.Workers,
		Requests:      r.Requests,
		ThroughputRPS: r.ThroughputRPS,
		GoodputRPS:    r.GoodputRPS,
		P50MS:         r.P50MS,
		P95MS:         r.P95MS,
		P99MS:         r.P99MS,
		MaxMS:         r.MaxMS,
		Shed429:       r.Shed429,
		Shed503:       r.Shed503,
		Deadline504:   r.Deadline504,
		Errors:        r.Errors,
	}
}

// shedRate is sheds/(sheds+admitted); 0 when the band saw no traffic.
func shedRate(b admission.BandStats) float64 {
	total := b.Sheds() + b.Admitted
	if total == 0 {
		return 0
	}
	return float64(b.Sheds()) / float64(total)
}

// Measure runs the admission grid. Progress lines go through logf (may
// be nil); the full-size run takes minutes.
func Measure(cfg Config, logf func(format string, args ...any)) (*Report, error) {
	cfg.defaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}

	logf("building %d-row movies dataset (seed %d)...", cfg.TargetRows, cfg.Seed)
	dcfg := loadgen.DatasetConfig{Kind: loadgen.KindMovies, TargetRows: cfg.TargetRows, Seed: cfg.Seed}
	db, err := loadgen.BuildDataset(dcfg)
	if err != nil {
		return nil, err
	}
	rows := db.NumRows()
	logf("dataset ready: %d rows; building engine (indexes, templates)...", rows)
	eng, err := loadgen.BuildEngine(dcfg)
	if err != nil {
		return nil, err
	}
	ops, err := loadgen.BuildWorkload(db, dcfg.Kind, loadgen.WorkloadConfig{Ops: 512, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Dataset:     fmt.Sprintf("datagen movies target=%d seed=%d", cfg.TargetRows, cfg.Seed),
		DatasetRows: rows,
		WorkloadOps: len(ops),
	}
	ctx := context.Background()

	// Find the knee on the ungated server: the concurrency a perfectly
	// informed operator would configure a static gate with.
	ts := httptest.NewServer(httpapi.New(eng))
	logf("saturation ramp: doubling workers up to %d, %v per step...", cfg.MaxWorkers, cfg.StepDuration)
	sat, err := loadgen.FindSaturation(ctx, loadgen.SaturationOptions{
		Base:         loadgen.Options{BaseURL: ts.URL, Ops: ops},
		MaxWorkers:   cfg.MaxWorkers,
		StepDuration: cfg.StepDuration,
	})
	ts.Close()
	if err != nil {
		return nil, err
	}
	for _, step := range sat.Steps {
		logf("  %s", step)
		rep.Rows = append(rep.Rows, row(fmt.Sprintf("saturate-w%d", step.Workers), step))
	}
	rep.SaturationRPS = sat.SaturationRPS
	rep.AtWorkers = sat.AtWorkers
	logf("saturation: %.0f req/s at %d workers", sat.SaturationRPS, sat.AtWorkers)

	knee := sat.AtWorkers
	if knee < 2 {
		knee = 2
	}
	maxQueue := 2 * knee
	queueTimeout := 200 * time.Millisecond
	overloadWorkers := 8 * knee
	overloadFor := 2 * cfg.StepDuration
	overload := func(name string, srv *httpapi.Server) (*loadgen.Result, *httpapi.HealthResponse, error) {
		hts := httptest.NewServer(srv)
		defer hts.Close()
		logf("%s: driving %d workers for %v...", name, overloadWorkers, overloadFor)
		res, err := loadgen.Run(ctx, loadgen.Options{
			BaseURL:  hts.URL,
			Ops:      ops,
			Workers:  overloadWorkers,
			Duration: overloadFor,
		})
		if err != nil {
			return nil, nil, err
		}
		logf("  %s", res)
		health, err := fetchHealth(hts.URL)
		if err != nil {
			return nil, nil, err
		}
		return res, health, nil
	}

	// Leg 1: static gate parked at the measured knee — the hand-tuned
	// baseline the governor competes with.
	static, _, err := overload("static-knee-8x", httpapi.New(eng,
		httpapi.WithAdmission(httpapi.AdmissionConfig{
			MaxConcurrent: knee,
			MaxQueue:      maxQueue,
			QueueTimeout:  queueTimeout,
		}),
		httpapi.WithRequestTimeout(5*time.Second),
	))
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, row("static-knee-8x", static))

	// Leg 2: the governor, given only a floor and the ramp's worker
	// bound as ceiling — no knowledge of the knee. Cost bands default
	// to the corpus-derived p50/p90 of EstimateCost.
	adaptive, ahealth, err := overload("adaptive-8x", httpapi.New(eng,
		httpapi.WithAdaptiveAdmission(httpapi.AdaptiveConfig{
			MinConcurrent: 2,
			MaxConcurrent: cfg.MaxWorkers,
			MaxQueue:      maxQueue,
			QueueTimeout:  queueTimeout,
			Window:        cfg.Window,
		}),
		httpapi.WithRequestTimeout(5*time.Second),
	))
	if err != nil {
		return nil, err
	}
	arow := row("adaptive-8x", adaptive)
	if static.GoodputRPS > 0 {
		arow.GoodputVsStaticKnee = adaptive.GoodputRPS / static.GoodputRPS
	}
	rep.Rows = append(rep.Rows, arow)
	if ahealth.Adaptive == nil {
		return nil, fmt.Errorf("benchadm: adaptive leg reported no governor state")
	}
	rep.Governor = GovernorOutcome{
		ControllerState: ahealth.Adaptive.ControllerState,
		AvgServiceMS:    ahealth.Adaptive.AvgServiceMS,
		Bands:           ahealth.Adaptive.Bands,
	}
	if n := len(ahealth.Adaptive.Bands); n > 0 {
		rep.Governor.CheapShedRate = shedRate(ahealth.Adaptive.Bands[0])
		rep.Governor.HeavyShedRate = shedRate(ahealth.Adaptive.Bands[n-1])
	}
	logf("governor: limit %d in [%d,%d] after %d windows (+%d/-%d), shed rates cheap %.3f heavy %.3f",
		rep.Governor.Limit, rep.Governor.MinLimit, rep.Governor.MaxLimit, rep.Governor.Windows,
		rep.Governor.Increases, rep.Governor.Backoffs,
		rep.Governor.CheapShedRate, rep.Governor.HeavyShedRate)

	// Leg 3: no protection at all — the collapse the other two prevent.
	ungated, _, err := overload("ungated-8x", httpapi.New(eng))
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, row("ungated-8x", ungated))

	return rep, nil
}

func fetchHealth(base string) (*httpapi.HealthResponse, error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h httpapi.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}
