package keysearch_test

import (
	"context"
	"fmt"
	"log"

	keysearch "repro"
)

// buildExampleEngine loads the running example of the paper: an ambiguous
// "london" that is both an actor and a movie-title word.
func buildExampleEngine() *keysearch.Engine {
	eng, err := keysearch.New([]keysearch.Table{
		{
			Name:       "actor",
			Columns:    []keysearch.Column{{Name: "id"}, {Name: "name", Text: true}},
			PrimaryKey: "id",
		},
		{
			Name:       "movie",
			Columns:    []keysearch.Column{{Name: "id"}, {Name: "title", Text: true}, {Name: "year", Text: true}},
			PrimaryKey: "id",
		},
		{
			Name:    "acts",
			Columns: []keysearch.Column{{Name: "actor_id"}, {Name: "movie_id"}},
			ForeignKeys: []keysearch.ForeignKey{
				{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
				{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	rows := [][]string{
		{"actor", "a1", "Jack London"},
		{"actor", "a2", "Tom Hanks"},
		{"movie", "m1", "London Boulevard", "2010"},
		{"movie", "m2", "The Terminal", "2004"},
		{"acts", "a1", "m1"},
		{"acts", "a2", "m2"},
	}
	for _, r := range rows {
		if err := eng.Insert(r[0], r[1:]...); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		log.Fatal(err)
	}
	return eng
}

// ExampleEngine_Search shows keyword-to-structured-query translation: the
// ambiguous keyword is returned with every reading, ranked by
// probability.
func ExampleEngine_Search() {
	eng := buildExampleEngine()
	resp, err := eng.Search(context.Background(), keysearch.SearchRequest{Query: "london", K: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range resp.Results {
		fmt.Println(r.Query)
	}
	// Output:
	// σ_{london}⊂name(actor)
	// σ_{london}⊂title(movie)
}

// ExampleEngine_Construct drives an interactive construction session with
// scripted answers: rejecting the actor reading leaves the movie reading.
func ExampleEngine_Construct() {
	eng := buildExampleEngine()
	ctx := context.Background()
	sess, err := eng.Construct(ctx, keysearch.ConstructRequest{Query: "london", StopAtRemaining: 1})
	if err != nil {
		log.Fatal(err)
	}
	for !sess.Done() {
		q, ok := sess.Next()
		if !ok {
			break
		}
		fmt.Println(q.Text)
		if err := sess.Reject(ctx, q); err != nil { // scripted user: "no, not that reading"
			log.Fatal(err)
		}
	}
	for _, c := range sess.Candidates() {
		fmt.Println("remaining:", c.Query)
	}
	// Output:
	// "london" is a value of actor.name
	// remaining: σ_{london}⊂title(movie)
}

// ExampleResult_Rows executes the top interpretation of a two-keyword
// query and prints the joined row.
func ExampleResult_Rows() {
	eng := buildExampleEngine()
	resp, err := eng.Search(context.Background(), keysearch.SearchRequest{Query: "hanks terminal", K: 1})
	if err != nil {
		log.Fatal(err)
	}
	rows, err := resp.Results[0].Rows(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rows[0]["actor.name"], "/", rows[0]["movie.title"])
	// Output:
	// Tom Hanks / The Terminal
}
