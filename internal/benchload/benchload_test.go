package benchload

import (
	"testing"
	"time"
)

// TestMeasureQuick runs the whole grid at toy scale: the point is that
// every leg executes, the report is shaped right, and the overload leg
// proves its queue bound — not that the numbers mean anything.
func TestMeasureQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("load grid takes a few seconds")
	}
	rep, err := Measure(Config{
		Quick:        true,
		TargetRows:   4000,
		StepDuration: 300 * time.Millisecond,
		MaxWorkers:   4,
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DatasetRows == 0 || rep.WorkloadOps == 0 {
		t.Fatalf("report missing dataset shape: %+v", rep)
	}
	if rep.SaturationRPS <= 0 || rep.AtWorkers < 1 {
		t.Fatalf("no saturation point: %+v", rep)
	}
	var sawOpen, sawOverload bool
	for _, r := range rep.Rows {
		if r.Requests == 0 {
			t.Fatalf("row %s measured nothing", r.Name)
		}
		switch r.Name {
		case "open-half-knee":
			sawOpen = true
			if r.Mode != "open" || r.TargetRPS <= 0 {
				t.Fatalf("open leg malformed: %+v", r)
			}
		case "overload-8x":
			sawOverload = true
			if r.GoodputVsSaturation <= 0 {
				t.Fatalf("overload leg missing the guard column: %+v", r)
			}
		}
	}
	if !sawOpen || !sawOverload {
		t.Fatalf("missing legs (open=%v overload=%v): %+v", sawOpen, sawOverload, rep.Rows)
	}
	if rep.Overload.MaxQueuedSeen > int64(rep.Overload.MaxQueue) {
		t.Fatalf("queue bound violated: %+v", rep.Overload)
	}
}
