package ranking

import (
	"math"
	"testing"

	"repro/internal/invindex"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/schemagraph"
)

type fixture struct {
	db  *relstore.Database
	ix  *invindex.Index
	cat *query.Catalog
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	db := relstore.NewDatabase("movies")
	must := func(s *relstore.TableSchema) *relstore.Table {
		tb, err := db.CreateTable(s)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	actor := must(&relstore.TableSchema{
		Name:       "actor",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	movie := must(&relstore.TableSchema{
		Name:       "movie",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "title", Indexed: true}},
		PrimaryKey: "id",
	})
	acts := must(&relstore.TableSchema{
		Name:    "acts",
		Columns: []relstore.Column{{Name: "actor_id"}, {Name: "movie_id"}},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
			{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
		},
	})
	ins := func(tb *relstore.Table, vals ...string) {
		t.Helper()
		if _, err := tb.Insert(vals...); err != nil {
			t.Fatal(err)
		}
	}
	// "garcia" is typical in actor names (3 actors) and rare in movie
	// titles (1 movie) — the worked contrast of Section 3.8.3.
	ins(actor, "a1", "Andy Garcia")
	ins(actor, "a2", "Eddie Garcia")
	ins(actor, "a3", "Luis Garcia")
	ins(actor, "a4", "Tom Hanks")
	ins(movie, "m1", "Garcia")
	ins(movie, "m2", "The Terminal")
	ins(movie, "m3", "Big")
	ins(acts, "a1", "m2")
	ins(acts, "a4", "m2")
	ix := invindex.Build(db)
	g := schemagraph.FromDatabase(db)
	cat := query.BuildCatalog(g, schemagraph.EnumerateOptions{MaxNodes: 3})
	return &fixture{db: db, ix: ix, cat: cat}
}

func garciaSpace(t *testing.T, f *fixture) []*query.Interpretation {
	t.Helper()
	c := query.GenerateCandidates(f.ix, []string{"garcia"}, query.GenerateOptionsConfig{})
	space := query.GenerateComplete(c, f.cat, query.GenerateConfig{})
	if len(space) < 2 {
		t.Fatalf("expected at least 2 garcia interpretations, got %d", len(space))
	}
	return space
}

func attrOf(q *query.Interpretation) string {
	return q.Bindings[0].KI.Attr.String()
}

// TestGarciaContrast reproduces the qualitative contrast of Section 3.8.3:
// ATF (IQP) interprets "garcia" as the typical actor name, while TF-IDF
// (SQAK) prefers the distinctive movie-title match.
func TestGarciaContrast(t *testing.T) {
	f := newFixture(t)
	space := garciaSpace(t, f)

	m := prob.New(f.ix, f.cat, prob.Config{})
	iqp := m.Rank(space)
	if attrOf(iqp[0].Q) != "actor.name" {
		t.Fatalf("IQP top = %s, want actor.name", attrOf(iqp[0].Q))
	}

	sq := NewSQAK(f.ix)
	sqak := sq.Rank(space)
	if attrOf(sqak[0].Q) != "movie.title" {
		t.Fatalf("SQAK top = %s, want movie.title", attrOf(sqak[0].Q))
	}
}

func TestSQAKPrefersShorterJoins(t *testing.T) {
	f := newFixture(t)
	c := query.GenerateCandidates(f.ix, []string{"garcia", "terminal"}, query.GenerateOptionsConfig{})
	space := query.GenerateComplete(c, f.cat, query.GenerateConfig{})
	sq := NewSQAK(f.ix)
	// Among interpretations with identical bindings, cost must grow with
	// tree size (Steiner-tree preference).
	var small, large *query.Interpretation
	for _, q := range space {
		if q.Template.Size() == 1 && small == nil {
			small = q
		}
		if q.Template.Size() == 3 && large == nil {
			large = q
		}
	}
	if small == nil || large == nil {
		t.Skip("fixture lacks both sizes")
	}
	if sq.Cost(small) >= sq.Cost(large) {
		t.Fatalf("shorter join should cost less: %v vs %v", sq.Cost(small), sq.Cost(large))
	}
}

func TestSQAKCostComponents(t *testing.T) {
	f := newFixture(t)
	sq := NewSQAK(f.ix)
	// A template-less interpretation is unrankable.
	q := &query.Interpretation{Keywords: []string{"x"}}
	if !math.IsInf(sq.Cost(q), 1) {
		t.Fatal("template-less cost should be +Inf")
	}
	// A 3-node tree with one keyword node: cost = 2 edges + 1 free node +
	// keyword node in (0,1].
	space := garciaSpace(t, f)
	for _, q := range space {
		if q.Template.Size() == 3 {
			c := sq.Cost(q)
			if c <= 3 || c > 4 {
				t.Fatalf("3-node cost = %v, want in (3,4]", c)
			}
			return
		}
	}
}

func TestSQAKKeywordAbsentFromAttr(t *testing.T) {
	f := newFixture(t)
	sq := NewSQAK(f.ix)
	// A binding whose keyword does not occur in the bound attribute
	// contributes zero TF-IDF: node cost = 1/(1+0) = 1 (like a free node).
	tpl := query.NewTemplate(0, &schemagraph.JoinTree{Tables: []string{"movie"}})
	q := query.NewInterpretation([]string{"hanks"}, tpl, []query.Binding{{
		KI: query.KeywordInterpretation{Pos: 0, Keyword: "hanks", Kind: query.KindValue,
			Attr: invindex.AttrRef{Table: "movie", Column: "title"}},
		Occ: 0,
	}})
	if got := sq.Cost(q); got != 1 {
		t.Fatalf("absent keyword node cost = %v, want 1", got)
	}
}

func TestRankOf(t *testing.T) {
	f := newFixture(t)
	space := garciaSpace(t, f)
	sq := NewSQAK(f.ix)
	ranked := sq.Rank(space)
	for i, r := range ranked {
		if got := RankOf(ranked, r.Q.Key()); got != i+1 {
			t.Fatalf("RankOf rank %d = %d", i+1, got)
		}
	}
	if RankOf(ranked, "missing") != 0 {
		t.Fatal("missing key should rank 0")
	}
}

func TestProbRankOf(t *testing.T) {
	f := newFixture(t)
	space := garciaSpace(t, f)
	m := prob.New(f.ix, f.cat, prob.Config{})
	ranked := m.Rank(space)
	for i, r := range ranked {
		if got := ProbRankOf(ranked, r.Q.Key()); got != i+1 {
			t.Fatalf("ProbRankOf rank %d = %d", i+1, got)
		}
	}
	if ProbRankOf(ranked, "missing") != 0 {
		t.Fatal("missing key should rank 0")
	}
}

func TestSQAKRankDeterministic(t *testing.T) {
	f := newFixture(t)
	space := garciaSpace(t, f)
	sq := NewSQAK(f.ix)
	r1 := sq.Rank(space)
	rev := make([]*query.Interpretation, len(space))
	for i, q := range space {
		rev[len(space)-1-i] = q
	}
	r2 := sq.Rank(rev)
	for i := range r1 {
		if r1[i].Q.Key() != r2[i].Q.Key() {
			t.Fatalf("SQAK ranking not deterministic at %d", i)
		}
	}
}
