package keysearch

import (
	"strings"
	"testing"
)

// TestEndToEndMovieDemo drives the complete pipeline on the bundled movie
// dataset: for a batch of data-derived ambiguous keywords it checks that
// (1) every ranked interpretation is well-formed and executable,
// (2) executed results actually contain the keyword,
// (3) construction can isolate every single one of the top readings, and
// (4) diversification returns a subset of the ranked readings.
func TestEndToEndMovieDemo(t *testing.T) {
	eng, err := DemoMovies(13)
	if err != nil {
		t.Fatal(err)
	}
	queries := eng.SampleQueries(12)
	if len(queries) < 5 {
		t.Fatalf("too few sample queries: %d", len(queries))
	}
	for _, q := range queries {
		ranked := search(t, eng, q, 6)
		if len(ranked) < 2 {
			continue // not ambiguous after all
		}
		// (1)+(2): execute each interpretation; any returned row must
		// contain the keyword in the bound attribute.
		for _, r := range ranked {
			rows, err := r.Rows(3)
			if err != nil {
				t.Fatalf("Rows(%q / %s): %v", q, r.Query, err)
			}
			for _, row := range rows {
				hit := false
				for _, v := range row {
					for _, tok := range strings.Fields(strings.ToLower(v)) {
						if strings.Trim(tok, ".,!?") == q {
							hit = true
						}
					}
				}
				if !hit {
					t.Fatalf("result of %q via %s lacks the keyword: %v", q, r.Query, row)
				}
			}
		}
		// (3): construction can isolate each of the top readings.
		for _, target := range ranked[:minInt(3, len(ranked))] {
			sess, err := eng.Construct(bg, ConstructRequest{Query: q, StopAtRemaining: 1})
			if err != nil {
				t.Fatalf("Construct(%q): %v", q, err)
			}
			guard := 0
			for !sess.Done() && guard < 100 {
				question, ok := sess.Next()
				if !ok {
					break
				}
				guard++
				// Oracle: accept iff the question's attribute appears as
				// a predicate of the target's rendering — the question
				// text says `… a value of director.name`, the rendering
				// says `σ_{…}⊂name(director)`.
				accept := false
				if parts := strings.SplitN(attrIn(question.Text), ".", 2); len(parts) == 2 {
					accept = strings.Contains(target.Query, parts[1]+"("+parts[0])
				}
				if accept {
					err = sess.Accept(bg, question)
				} else {
					err = sess.Reject(bg, question)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			found := false
			for _, c := range sess.Candidates() {
				if c.Query == target.Query {
					found = true
				}
			}
			if !found {
				t.Fatalf("construction of %q lost target %s", q, target.Query)
			}
		}
		// (4): diversification returns a subset of the full ranking.
		div, err := eng.Diversify(bg, DiversifyRequest{Query: q, K: 4, Lambda: 0.1})
		if err != nil {
			t.Fatalf("Diversify(%q): %v", q, err)
		}
		all := search(t, eng, q, 0)
		known := map[string]bool{}
		for _, r := range all {
			known[r.Query] = true
		}
		for _, r := range div.Results {
			if !known[r.Query] {
				t.Fatalf("diversified foreign interpretation: %v", r.Query)
			}
		}
	}
}

// attrIn extracts the "table.column" fragment of a question text.
func attrIn(text string) string {
	fields := strings.Fields(text)
	for _, f := range fields {
		if strings.Count(f, ".") == 1 && !strings.HasPrefix(f, ".") {
			return f
		}
	}
	return text
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestEndToEndMusicDemo exercises the 5-table chain schema end to end:
// artist+song multi-concept queries require the full chain join.
func TestEndToEndMusicDemo(t *testing.T) {
	eng, err := DemoMusic(13)
	if err != nil {
		t.Fatal(err)
	}
	queries := eng.SampleQueries(8)
	for _, q := range queries {
		ranked := search(t, eng, q, 5)
		if len(ranked) == 0 {
			t.Fatalf("Search(%q): no results", q)
		}
		for _, r := range ranked {
			if _, err := r.Rows(2); err != nil {
				t.Fatalf("Rows(%q): %v", q, err)
			}
		}
	}
	// The 5-table chain template must exist in the catalogue: verify a
	// chain interpretation can be produced for an artist+song pair.
	found := false
	for i := 0; i < len(queries) && !found; i++ {
		for j := 0; j < len(queries) && !found; j++ {
			if i == j {
				continue
			}
			resp, err := eng.Search(bg, SearchRequest{Query: queries[i] + " " + queries[j]})
			if err != nil {
				continue
			}
			for _, r := range resp.Results {
				if len(r.Tables) == 5 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Skip("no 5-table chain interpretation found for this seed (workload-dependent)")
	}
}
