// Command bench runs the repo's benchmark grids and writes the
// measurements to JSON files, so the perf trajectory is tracked from PR
// to PR by CI:
//
//   - the interpretation-pipeline grid (keyword count × parallelism, plus
//     score-cache ablations — the same grid as
//     BenchmarkPipelineSequentialVsParallel) → BENCH_pipeline.json, and
//   - the executor legs (scan reference vs compiled posting-list
//     execution, with and without the per-request selection cache, plus
//     the allocation-free count probe — the same legs as
//     BenchmarkExecute*) → BENCH_executor.json.
//
// Usage:
//
//	go run ./cmd/bench [-out BENCH_pipeline.json] [-exec-out BENCH_executor.json]
//	                   [-only all|pipeline|executor] [-quick]
//
// The output records ns/op, allocations, and speedups against each grid's
// baseline (sequential for the pipeline, scan for the executor),
// alongside the host shape (CPU count, GOMAXPROCS) needed to interpret
// absolute numbers.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/benchexec"
	"repro/internal/benchpipe"
)

// pipelineReport is the top-level shape of BENCH_pipeline.json.
type pipelineReport struct {
	GeneratedAt string          `json:"generated_at"`
	GoVersion   string          `json:"go_version"`
	NumCPU      int             `json:"num_cpu"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	Dataset     string          `json:"dataset"`
	Rows        []benchpipe.Row `json:"rows"`
}

// executorReport is the top-level shape of BENCH_executor.json.
type executorReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	*benchexec.Report
}

func main() {
	out := flag.String("out", "BENCH_pipeline.json", "pipeline grid output file")
	execOut := flag.String("exec-out", "BENCH_executor.json", "executor legs output file")
	only := flag.String("only", "all", "which grids to run: all, pipeline, or executor")
	quick := flag.Bool("quick", false, "run the trimmed quick pipeline grid")
	flag.Parse()

	runPipeline := *only == "all" || *only == "pipeline"
	runExecutor := *only == "all" || *only == "executor"
	if !runPipeline && !runExecutor {
		log.Fatalf("unknown -only value %q (want all, pipeline, or executor)", *only)
	}

	if runPipeline {
		cases := benchpipe.Cases(*quick)
		log.Printf("running %d pipeline benchmark cases (quick=%v)...", len(cases), *quick)
		rows, err := benchpipe.Measure(cases)
		if err != nil {
			log.Fatal(err)
		}
		rep := pipelineReport{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Dataset:     "demo-movies scaled 2.5x",
			Rows:        rows,
		}
		writeJSON(*out, rep)
		for _, r := range rows {
			log.Printf("%-22s %12d ns/op  speedup %.2fx", r.Name, r.NsPerOp, r.SpeedupVsSequential)
		}
		log.Printf("wrote %s", *out)
	}

	if runExecutor {
		log.Printf("running executor benchmark legs...")
		rep, err := benchexec.Measure()
		if err != nil {
			log.Fatal(err)
		}
		writeJSON(*execOut, executorReport{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Report:      rep,
		})
		for _, r := range rep.Rows {
			log.Printf("%-16s %12d ns/op  %8d allocs/op  speedup %.2fx vs scan",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.SpeedupVsScan)
		}
		log.Printf("wrote %s", *execOut)
	}
}

// writeJSON marshals the report with a trailing newline.
func writeJSON(path string, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		log.Fatal(err)
	}
}
