// Diversify: DivQ result diversification over the bundled synthetic
// lyrics database (Chapter 4).
//
// For an ambiguous keyword query, the plain relevance ranking often puts
// near-duplicate interpretations at the top (same keyword reading, small
// structural variations, overlapping results). DivQ re-ranks the
// interpretations to balance relevance against novelty, so the top-k give
// the user an overview of the genuinely different readings.
//
//	go run ./examples/diversify
package main

import (
	"fmt"
	"log"

	keysearch "repro"
)

func main() {
	sys, err := keysearch.DemoMusic(11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("music database: %d tables, %d rows\n\n", sys.NumTables(), sys.NumRows())

	queries := sys.SampleQueries(20)
	if len(queries) == 0 {
		log.Fatal("no ambiguous sample queries found")
	}
	// Pick the keyword pair with the most interpretations: two-keyword
	// queries have structurally overlapping readings, which is where
	// diversification shows.
	best, bestN := "", 0
	for i := 0; i < len(queries); i++ {
		for j := i + 1; j < len(queries) && j < i+8; j++ {
			cand := queries[i] + " " + queries[j]
			rs, err := sys.Search(cand, 0)
			if err != nil {
				continue
			}
			if len(rs) > bestN {
				best, bestN = cand, len(rs)
			}
		}
	}
	fmt.Printf("keyword query: %q (%d interpretations)\n", best, bestN)

	const k = 4
	ranked, err := sys.Search(best, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-%d by relevance only:\n", k)
	for i, r := range ranked {
		fmt.Printf("  %d. P=%.3f  %s\n", i+1, r.Probability, r.Query)
	}

	// Note: DivQ first drops interpretations with empty results (they
	// cannot contribute novelty), so the diversified lists may exclude
	// high-probability readings that return nothing on this data.
	for _, lambda := range []float64{0.5, 0.1} {
		div, err := sys.Diversify(best, k, lambda)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntop-%d diversified (λ=%.1f — %s):\n", k, lambda,
			map[float64]string{0.5: "balanced", 0.1: "novelty-heavy"}[lambda])
		for i, r := range div {
			fmt.Printf("  %d. P=%.3f  %s\n", i+1, r.Probability, r.Query)
		}
	}
}
