// Package prob implements the probabilistic query interpretation model of
// Section 3.6: the decomposition of P(Q|K) into a template prior P(T) and
// per-keyword interpretation probabilities P(Ai:ki | T∩Ai) under the
// keyword-independence assumptions 3.6.1/3.6.2 (Equation 3.5), estimated
// from the Attribute Term Frequency statistic (Equation 3.8) and,
// optionally, from a query log (Equation 3.7).
//
// It also implements the DivQ refinement of Equation 4.2: keyword
// co-occurrence within one attribute raises the joint probability above
// the product of the marginals (binding a first and last name to the same
// "name" attribute beats splitting them), and unmapped keywords of partial
// interpretations are charged the smoothing factor Pu.
package prob

import (
	"context"
	"math"
	"sort"
	"sync"

	"repro/internal/invindex"
	"repro/internal/query"
)

// Config tunes the model.
type Config struct {
	// Alpha is the ATF smoothing parameter of Equation 3.8 (default 1).
	Alpha float64
	// SchemaTermProb is the empirical probability assigned to schema-term
	// interpretations (table/attribute name matches) when no query log
	// covers them; the "empirical values set by domain experts" of
	// Section 3.6.2 (default 0.5).
	SchemaTermProb float64
	// UseTemplateLog enables the query-log template prior of Equation 3.7;
	// without it all templates are equally probable.
	UseTemplateLog bool
	// UseCoOccurrence enables DivQ's joint co-occurrence probability for
	// keyword groups bound to the same attribute of the same occurrence
	// (Equation 4.2).
	UseCoOccurrence bool
	// Pu is the probability that an unmapped keyword's intended
	// interpretation matches no database attribute (Equation 4.2). It must
	// stay below the minimum probability of any existing keyword
	// interpretation so complete interpretations outrank partial ones;
	// 0 selects a conservative default.
	Pu float64
	// Parallelism is the number of workers RankContext uses to score an
	// interpretation space concurrently (<= 1 scores sequentially). Scores
	// land at their input index and normalisation sums them in index order,
	// so ranking output is bit-identical at every setting.
	Parallelism int
	// DisableScoreCache turns off the per-Model memoised cache of
	// (template, keyword-interpretation) sub-term probabilities. The cache
	// is on by default: sub-terms are pure functions of the immutable index,
	// so memoisation never changes a score.
	DisableScoreCache bool
}

// Model scores query interpretations. A Model is safe for concurrent use:
// its inputs are immutable and its memoised sub-term cache is
// synchronised.
type Model struct {
	ix    *invindex.Index
	cat   *query.Catalog
	cfg   Config
	cache *scoreCache // nil when Config.DisableScoreCache
}

// New builds a model over an index and a template catalogue.
func New(ix *invindex.Index, cat *query.Catalog, cfg Config) *Model {
	if cfg.Alpha <= 0 {
		cfg.Alpha = 1
	}
	if cfg.SchemaTermProb <= 0 {
		cfg.SchemaTermProb = 0.5
	}
	if cfg.Pu <= 0 {
		// Below any smoothed ATF: the reserved-unseen mass of the largest
		// attribute is ~alpha/(tokens+alpha*(V+1)); divide once more.
		maxTokens := 1
		for _, a := range ix.Attributes() {
			if n := ix.AttrTokens(a); n > maxTokens {
				maxTokens = n
			}
		}
		cfg.Pu = cfg.Alpha / (float64(maxTokens) * 10)
		if cfg.Pu >= 1 {
			cfg.Pu = 0.01
		}
	}
	m := &Model{ix: ix, cat: cat, cfg: cfg}
	if !cfg.DisableScoreCache {
		m.cache = newScoreCache()
	}
	return m
}

// Index exposes the underlying inverted index.
func (m *Model) Index() *invindex.Index { return m.ix }

// Catalog exposes the template catalogue.
func (m *Model) Catalog() *query.Catalog { return m.cat }

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// TemplatePrior returns P(T) per Equation 3.7. With no query log (or when
// the log is disabled) every template is equally probable. The prior is
// memoised per Model, so catalogue usage counts must be recorded before
// the Model is created (or the cache disabled) to be reflected.
func (m *Model) TemplatePrior(tpl *query.Template) float64 {
	if m.cache != nil {
		return m.cache.templatePrior(tpl.ID, func() float64 { return m.templatePrior(tpl) })
	}
	return m.templatePrior(tpl)
}

func (m *Model) templatePrior(tpl *query.Template) float64 {
	n := len(m.cat.Templates)
	if n == 0 {
		return 0
	}
	if !m.cfg.UseTemplateLog || m.cat.UsageCount == nil {
		return 1 / float64(n)
	}
	total := float64(m.cat.TotalUsage())
	occ := float64(m.cat.UsageCount[tpl.ID])
	return (occ + m.cfg.Alpha) / (total + m.cfg.Alpha*float64(n))
}

// KeywordProb returns P(Ai:ki | T∩Ai) for a single keyword interpretation:
// ATF for value interpretations (Equation 3.8) and the empirical schema
// term probability for table/attribute-name interpretations.
func (m *Model) KeywordProb(ki query.KeywordInterpretation) float64 {
	if m.cache != nil {
		return m.cache.keywordProb(ki, func() float64 { return m.keywordProb(ki) })
	}
	return m.keywordProb(ki)
}

func (m *Model) keywordProb(ki query.KeywordInterpretation) float64 {
	switch ki.Kind {
	case query.KindValue:
		return m.ix.ATF(ki.Keyword, ki.Attr, m.cfg.Alpha)
	default:
		return m.cfg.SchemaTermProb
	}
}

// jointValueProb returns the DivQ joint probability P(A:[k1..kn] | A) of a
// keyword group bound to the same attribute of the same occurrence: the
// smoothed fraction of the attribute's values containing the whole bag.
// For a single keyword it reduces to ATF so the IQP and DivQ models agree
// on singletons. The multi-keyword case scans the attribute's rows, which
// makes it the most expensive sub-term — and the one the memoised cache
// pays off most for.
func (m *Model) jointValueProb(keywords []string, attr invindex.AttrRef) float64 {
	if m.cache != nil {
		return m.cache.jointProb(keywords, attr, func() float64 { return m.jointValueProbUncached(keywords, attr) })
	}
	return m.jointValueProbUncached(keywords, attr)
}

func (m *Model) jointValueProbUncached(keywords []string, attr invindex.AttrRef) float64 {
	if len(keywords) == 1 {
		return m.ix.ATF(keywords[0], attr, m.cfg.Alpha)
	}
	match, total := m.ix.CoOccurrence(keywords, attr)
	vocab := float64(m.ix.AttrVocabulary(attr))
	return (float64(match) + m.cfg.Alpha) / (float64(total) + m.cfg.Alpha*(vocab+1))
}

// Score returns the unnormalised probability of a (partial or complete)
// interpretation per Equations 3.5/3.6 (and 4.2 when co-occurrence is
// enabled): the product of keyword interpretation probabilities times the
// template prior, with unmapped keywords charged Pu.
func (m *Model) Score(q *query.Interpretation) float64 {
	score := 1.0
	if q.Template != nil {
		score *= m.TemplatePrior(q.Template)
	}
	if m.cfg.UseCoOccurrence {
		score *= m.groupedValueProb(q)
	} else {
		for _, b := range q.Bindings {
			if b.KI.Kind == query.KindValue {
				score *= m.KeywordProb(b.KI)
			}
		}
	}
	for _, b := range q.Bindings {
		if b.KI.Kind != query.KindValue {
			score *= m.KeywordProb(b.KI)
		}
	}
	// Unmapped keywords (partial interpretations): factor Pu each (Eq 4.2).
	unmapped := len(q.Keywords) - len(q.Bindings)
	for i := 0; i < unmapped; i++ {
		score *= m.cfg.Pu
	}
	return score
}

// groupedValueProb multiplies the joint probabilities of value-binding
// groups per (occurrence, attribute).
func (m *Model) groupedValueProb(q *query.Interpretation) float64 {
	type slot struct {
		occ  int
		attr invindex.AttrRef
	}
	groups := make(map[slot][]string)
	var order []slot
	for _, b := range q.Bindings {
		if b.KI.Kind != query.KindValue {
			continue
		}
		s := slot{occ: b.Occ, attr: b.KI.Attr}
		if _, ok := groups[s]; !ok {
			order = append(order, s)
		}
		groups[s] = append(groups[s], b.KI.Keyword)
	}
	p := 1.0
	for _, s := range order {
		p *= m.jointValueProb(groups[s], s.attr)
	}
	return p
}

// Scored pairs an interpretation with its score and (after normalisation
// over a concrete candidate set) its probability.
type Scored struct {
	Q     *query.Interpretation
	Score float64
	// Prob is Score normalised over the ranked set, i.e. P(Q|K) restricted
	// to the materialised interpretation space.
	Prob float64
}

// Rank scores and sorts interpretations by descending probability,
// normalising scores into a distribution over the given space. Ties break
// deterministically on the interpretation key. It is the context-free
// convenience form of RankContext.
func (m *Model) Rank(space []*query.Interpretation) []Scored {
	out, _ := m.RankContext(context.Background(), space)
	return out
}

// rankCheckEvery is the scoring-loop stride between context checks.
const rankCheckEvery = 256

// RankContext is Rank with cancellation and optional parallel scoring:
// the context is checked on entry and every rankCheckEvery scored
// interpretations (per worker when parallel), so ranking a large
// interpretation space aborts early on a cancelled or expired request.
//
// With cfg.Parallelism > 1 the space is split into contiguous blocks
// scored concurrently; every score lands at its input index and the
// normalising total is summed sequentially in index order afterwards, so
// probabilities and ordering are bit-identical to the sequential path
// (float addition is order-sensitive; goroutine-order accumulation would
// not be deterministic).
func (m *Model) RankContext(ctx context.Context, space []*query.Interpretation) ([]Scored, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]Scored, len(space))
	if m.cfg.Parallelism > 1 && len(space) > 1 {
		if err := m.scoreParallel(ctx, space, out); err != nil {
			return nil, err
		}
	} else {
		for i, q := range space {
			if i%rankCheckEvery == rankCheckEvery-1 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			out[i] = Scored{Q: q, Score: m.Score(q)}
		}
	}
	total := 0.0
	for i := range out {
		total += out[i].Score
	}
	if total > 0 {
		for i := range out {
			out[i].Prob = out[i].Score / total
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Q.Key() < out[j].Q.Key()
	})
	return out, nil
}

// scoreParallel fills out[i] with the score of space[i] using
// cfg.Parallelism workers over contiguous blocks.
func (m *Model) scoreParallel(ctx context.Context, space []*query.Interpretation, out []Scored) error {
	workers := m.cfg.Parallelism
	if workers > len(space) {
		workers = len(space)
	}
	block := (len(space) + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * block
		hi := lo + block
		if hi > len(space) {
			hi = len(space)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if (i-lo)%rankCheckEvery == rankCheckEvery-1 {
					if err := ctx.Err(); err != nil {
						errs[w] = err
						return
					}
				}
				out[i] = Scored{Q: space[i], Score: m.Score(space[i])}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Entropy returns the Shannon entropy (bits) of a normalised probability
// vector; zero-probability entries contribute nothing.
func Entropy(probs []float64) float64 {
	h := 0.0
	for _, p := range probs {
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

// NormalizedEntropy normalises arbitrary non-negative weights into a
// distribution and returns its entropy. Used to select ambiguous queries
// in the DivQ evaluation (Section 4.6.1).
func NormalizedEntropy(weights []float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	probs := make([]float64, len(weights))
	for i, w := range weights {
		probs[i] = w / total
	}
	return Entropy(probs)
}
