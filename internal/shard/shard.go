// Package shard executes compiled join plans scatter-gather across N
// logical partitions of one relstore snapshot and merges the partial
// streams back into the exact single-process result sequence.
//
// Partitioning is by ownership of the enumeration root: every row is
// hashed to one shard (Owner), and a shard enumerates only the joining
// trees whose root-candidate RowID it owns. The snapshot itself is
// shared — tables, posting lists, and equality indexes are immutable
// between mutations, so "cloning per shard" is pointer sharing, and a
// join is free to reach rows any shard owns below the root. That keeps
// cross-shard joins impossible by construction: the only partitioned
// decision is which root rows a shard starts from.
//
// Determinism argument (the byte-identity bar from the parallelism
// tests): relstore enumeration picks the root node from unfiltered
// candidate counts, so all shards elect the same root; it then emits
// results in ascending root-candidate order, in contiguous blocks per
// root row. A shard's stream is therefore an order-preserving
// subsequence of the global stream, root ownership makes the
// subsequences disjoint and exhaustive, and a k-way merge on the
// current head's root RowID reassembles the global sequence exactly.
// Truncation is safe under merge: a result at global position ≤ limit
// sits at position ≤ limit within its own shard's stream, so per-shard
// limits never starve the merged prefix.
package shard

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/relstore"
	"repro/internal/trace"
)

// Owner maps a RowID to its owning shard among n via a splitmix64-style
// avalanche of the id. Sequential RowIDs — which is how every generator
// and loader allocates them — would make modulo alone a stripe pattern
// correlated with table build order; the mixer decorrelates ownership
// from allocation order so shard loads stay balanced under any workload.
func Owner(rowID, n int) int {
	if n <= 1 {
		return 0
	}
	z := uint64(rowID) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(n))
}

// Exec is a request-scoped scatter-gather relstore.PlanExecutor over n
// shards of one snapshot. Per-shard SelectionCaches share computed
// selections request-wide (selections are partition-independent) and
// with the engine-lifetime answer-cache view when one is supplied; the
// whole-plan answer cache is consulted and published only here at the
// coordinator, never by the partitioned runs themselves.
type Exec struct {
	db     *relstore.Database
	n      int
	view   relstore.SharedStore
	stats  *Stats
	caches []*relstore.SelectionCache
	// tr, when non-nil, receives per-shard busy time, merge time, and
	// whole-plan cache hits as trace counters. Recording is aggregation
	// only — a traced Exec produces byte-identical results.
	tr *trace.Trace
}

// Traced attaches the request's trace to the executor (nil is a no-op)
// and returns it, so providers can chain construction.
func (x *Exec) Traced(tr *trace.Trace) *Exec {
	x.tr = tr
	return x
}

// NewExec builds an executor for one request against db split n ways.
// view is the request's answer-cache view (nil when the answer cache is
// off); useCache controls the per-request selection caches exactly as
// the execution cache toggle does for the local executor; stats is the
// engine-lifetime counter block (nil allocates a throwaway one).
func NewExec(db *relstore.Database, n int, view relstore.SharedStore, useCache bool, stats *Stats) *Exec {
	if n < 1 {
		n = 1
	}
	if stats == nil {
		stats = NewStats(n)
	}
	x := &Exec{db: db, n: n, view: view, stats: stats}
	if useCache {
		store := &selStore{m: make(map[selKey][]int), view: view}
		x.caches = make([]*relstore.SelectionCache, n)
		for i := 0; i < n; i++ {
			x.caches[i] = relstore.NewSelectionCacheShared(&shardView{store: store, sc: &stats.shards[i]})
		}
	} else {
		x.caches = make([]*relstore.SelectionCache, n)
	}
	return x
}

// recordShard attributes one partitioned run's busy time to the trace.
// Per-shard names keep the counter set bounded by the topology (n
// counters), not by how many plans a request executes, which is the
// trace-size discipline for the execute-per-shard stage.
func (x *Exec) recordShard(i int, d time.Duration) {
	if x.tr == nil {
		return
	}
	x.tr.CountDuration("shard_"+strconv.Itoa(i)+"_busy_ns", d)
	x.tr.Count("shard_executions", 1)
}

// ownerFn returns the partition predicate for shard i.
func (x *Exec) ownerFn(i int) func(rowID int) bool {
	n := x.n
	return func(rowID int) bool { return Owner(rowID, n) == i }
}

// ExecutePlan implements relstore.PlanExecutor: compile once, consult
// the shared whole-plan cache, scatter the enumeration across shards,
// merge by root RowID, publish. The output is byte-identical to
// LocalExecutor.ExecutePlan at any shard count.
func (x *Exec) ExecutePlan(p *relstore.JoinPlan, limit int) ([]relstore.JTT, error) {
	cp, err := x.db.Compile(p)
	if err != nil {
		return nil, err
	}
	var key string
	if x.view != nil {
		key = cp.CacheKey(limit)
		if rows, ok := x.view.GetPlan(key); ok {
			x.tr.Count("shard_plan_cache_hits", 1)
			if len(rows) == 0 {
				return nil, nil
			}
			results := make([]relstore.JTT, len(rows))
			for i, r := range rows {
				results[i] = relstore.JTT{Rows: r}
			}
			return results, nil
		}
	}

	x.stats.scatters.Add(1)
	x.tr.Count("shard_scatters", 1)
	outs := make([][]relstore.JTT, x.n)
	roots := make([]int, x.n)
	var wg sync.WaitGroup
	for i := 0; i < x.n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			outs[i], roots[i], _ = cp.ExecutePart(limit, x.caches[i], x.ownerFn(i))
			x.recordShard(i, time.Since(t0))
			x.stats.shards[i].execs.Add(1)
			x.stats.shards[i].results.Add(int64(len(outs[i])))
		}(i)
	}
	wg.Wait()

	root := -1
	for _, r := range roots {
		if r >= 0 {
			root = r
			break
		}
	}
	tm := time.Now()
	merged := mergeByRoot(outs, root, limit)
	x.tr.CountDuration("shard_merge_ns", time.Since(tm))
	x.stats.merged.Add(int64(len(merged)))

	if x.view != nil {
		rows := make([][]int, len(merged))
		for i := range merged {
			rows[i] = merged[i].Rows
		}
		x.view.PutPlan(key, cp.Footprint(), rows)
	}
	return merged, nil
}

// CountPlan implements relstore.PlanExecutor. Each shard counts its
// owned slice bounded by limit; min(Σ partials, limit) is exact — a
// shard's true count only exceeds its report when the report already
// reached limit, in which case the capped sum has too.
func (x *Exec) CountPlan(p *relstore.JoinPlan, limit int) (int, error) {
	cp, err := x.db.Compile(p)
	if err != nil {
		return 0, err
	}
	var key string
	if x.view != nil {
		key = cp.CacheKey(limit)
		if n, ok := x.view.GetCount(key); ok {
			x.tr.Count("shard_count_cache_hits", 1)
			return n, nil
		}
	}

	x.stats.countScatters.Add(1)
	x.tr.Count("shard_scatters", 1)
	partial := make([]int, x.n)
	var wg sync.WaitGroup
	for i := 0; i < x.n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			partial[i], _ = cp.CountPart(limit, x.caches[i], x.ownerFn(i))
			x.recordShard(i, time.Since(t0))
			x.stats.shards[i].execs.Add(1)
		}(i)
	}
	wg.Wait()

	total := 0
	for _, c := range partial {
		total += c
	}
	if limit > 0 && total > limit {
		total = limit
	}
	if x.view != nil {
		x.view.PutCount(key, cp.Footprint(), total)
	}
	return total, nil
}

// mergeByRoot k-way merges per-shard result streams on the root
// RowID of each stream's head. Root ownership is disjoint across
// shards, so heads never tie; blocks per root row are contiguous within
// a stream, so a simple smallest-head merge reproduces the global
// ascending-root enumeration order. root < 0 means no shard produced
// results (the plan is globally empty).
func mergeByRoot(outs [][]relstore.JTT, root, limit int) []relstore.JTT {
	if root < 0 {
		return nil
	}
	total := 0
	nonEmpty := 0
	last := -1
	for i, out := range outs {
		total += len(out)
		if len(out) > 0 {
			nonEmpty++
			last = i
		}
	}
	if limit > 0 && total > limit {
		total = limit
	}
	if total == 0 {
		return nil
	}
	if nonEmpty == 1 {
		return outs[last][:total]
	}
	merged := make([]relstore.JTT, 0, total)
	pos := make([]int, len(outs))
	for len(merged) < total {
		best := -1
		bestRoot := 0
		for i, out := range outs {
			if pos[i] >= len(out) {
				continue
			}
			r := out[pos[i]].Rows[root]
			if best < 0 || r < bestRoot {
				best = i
				bestRoot = r
			}
		}
		if best < 0 {
			break
		}
		merged = append(merged, outs[best][pos[best]])
		pos[best]++
	}
	return merged
}

// selKey identifies one selection in the request-wide store. Unlike the
// per-request SelectionCache (which keys by *Table pointer), the store
// keys by table name — the same identity the engine-lifetime layer
// uses — because it brokers between per-shard caches and that layer.
type selKey struct {
	table string
	col   int
	bag   string
}

// selStore shares computed selections across the per-shard caches of
// one request and brokers them to the engine-lifetime view (when
// present). Selections are partition-independent, so shard A computing
// σ_{hanks ∈ name}(actor) must spare shards B..N the posting-list work.
// Whole-plan and count entries are refused: partial streams must never
// reach the global answer cache except through the coordinator's merge.
type selStore struct {
	mu   sync.RWMutex
	m    map[selKey][]int
	view relstore.SharedStore
}

func (s *selStore) GetSelection(table string, col int, bag string) ([]int, bool) {
	k := selKey{table: table, col: col, bag: bag}
	s.mu.RLock()
	rows, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		return rows, true
	}
	if s.view != nil {
		if rows, ok := s.view.GetSelection(table, col, bag); ok {
			s.mu.Lock()
			s.m[k] = rows
			s.mu.Unlock()
			return rows, true
		}
	}
	return nil, false
}

func (s *selStore) PutSelection(table string, col int, bag string, rows []int) {
	k := selKey{table: table, col: col, bag: bag}
	s.mu.Lock()
	s.m[k] = rows
	s.mu.Unlock()
	if s.view != nil {
		s.view.PutSelection(table, col, bag, rows)
	}
}

func (s *selStore) GetPlan(string) ([][]int, bool)           { return nil, false }
func (s *selStore) PutPlan(string, []relstore.Attr, [][]int) {}
func (s *selStore) GetCount(string) (int, bool)              { return 0, false }
func (s *selStore) PutCount(string, []relstore.Attr, int)    {}

// shardView is one shard's window onto the request's selStore,
// attributing hits and computations to that shard's counters. It is the
// SharedStore behind the shard's SelectionCache; the plan/count methods
// are unreachable there (partitioned runs call runCore directly) and
// no-op defensively.
type shardView struct {
	store *selStore
	sc    *ShardCounters
}

func (v *shardView) GetSelection(table string, col int, bag string) ([]int, bool) {
	rows, ok := v.store.GetSelection(table, col, bag)
	if ok {
		v.sc.selHits.Add(1)
	}
	return rows, ok
}

func (v *shardView) PutSelection(table string, col int, bag string, rows []int) {
	v.sc.selComputed.Add(1)
	v.store.PutSelection(table, col, bag, rows)
}

func (v *shardView) GetPlan(string) ([][]int, bool)           { return nil, false }
func (v *shardView) PutPlan(string, []relstore.Attr, [][]int) {}
func (v *shardView) GetCount(string) (int, bool)              { return 0, false }
func (v *shardView) PutCount(string, []relstore.Attr, int)    {}
