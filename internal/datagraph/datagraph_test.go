package datagraph

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/relstore"
)

func movieDB(t *testing.T) *relstore.Database {
	t.Helper()
	db := relstore.NewDatabase("movies")
	must := func(s *relstore.TableSchema) *relstore.Table {
		tb, err := db.CreateTable(s)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	actor := must(&relstore.TableSchema{
		Name:       "actor",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	movie := must(&relstore.TableSchema{
		Name:       "movie",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "title", Indexed: true}},
		PrimaryKey: "id",
	})
	acts := must(&relstore.TableSchema{
		Name:    "acts",
		Columns: []relstore.Column{{Name: "actor_id"}, {Name: "movie_id"}},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
			{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
		},
	})
	ins := func(tb *relstore.Table, vals ...string) {
		t.Helper()
		if _, err := tb.Insert(vals...); err != nil {
			t.Fatal(err)
		}
	}
	ins(actor, "a1", "Tom Hanks")
	ins(actor, "a2", "Tom Cruise")
	ins(movie, "m1", "The Terminal")
	ins(movie, "m2", "Vanilla Sky")
	ins(acts, "a1", "m1")
	ins(acts, "a2", "m2")
	return db
}

func TestBuildGraphShape(t *testing.T) {
	g := Build(movieDB(t))
	if g.NumNodes() != 6 {
		t.Fatalf("nodes = %d, want 6", g.NumNodes())
	}
	// Each acts row has 2 edges: 4 total.
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
	hanks := g.Containing("hanks")
	if len(hanks) != 1 || hanks[0] != (Node{Table: "actor", Row: 0}) {
		t.Fatalf("Containing(hanks) = %v", hanks)
	}
	if len(g.Containing("HANKS")) != 1 {
		t.Fatal("containment should be case-insensitive")
	}
	if g.Containing("zzz") != nil {
		t.Fatal("unknown term should have no nodes")
	}
	if g.Containing("") != nil {
		t.Fatal("empty term should have no nodes")
	}
}

// TestBackwardExpandingSearch reproduces the canonical §2.2.2 example:
// "hanks terminal" connects Tom Hanks to The Terminal through the acts
// tuple — a 3-node joining tree.
func TestBackwardExpandingSearch(t *testing.T) {
	g := Build(movieDB(t))
	trees, err := g.Search([]string{"hanks", "terminal"}, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 {
		t.Fatal("no result trees")
	}
	best := trees[0]
	if best.Weight != 2 || len(best.Nodes) != 3 {
		t.Fatalf("best tree = %+v, want the 3-node acts join", best)
	}
	if !g.ContainsAll(best, []string{"hanks", "terminal"}) {
		t.Fatal("best tree does not contain both keywords")
	}
	if !g.Connected(best) {
		t.Fatal("best tree not connected")
	}
	// Cross pair with no connection inside MaxWeight: hanks + sky share no
	// movie.
	trees, err = g.Search([]string{"hanks", "sky"}, Options{K: 5, MaxWeight: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 0 {
		t.Fatalf("hanks+sky should not connect within weight 3: %v", trees)
	}
}

func TestSearchSingleKeyword(t *testing.T) {
	g := Build(movieDB(t))
	trees, err := g.Search([]string{"tom"}, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Both Toms are singleton trees of weight 0.
	if len(trees) != 2 {
		t.Fatalf("trees = %v", trees)
	}
	for _, tr := range trees {
		if tr.Weight != 0 || len(tr.Nodes) != 1 {
			t.Fatalf("singleton expected: %+v", tr)
		}
	}
}

func TestSearchAndSemantics(t *testing.T) {
	g := Build(movieDB(t))
	// An absent keyword empties the result (AND semantics).
	trees, err := g.Search([]string{"hanks", "zzz"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if trees != nil {
		t.Fatalf("absent keyword should empty the result: %v", trees)
	}
	if _, err := g.Search(nil, Options{}); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestSearchOrderedByWeight(t *testing.T) {
	db, err := datagen.IMDB(datagen.IMDBConfig{
		Movies: 120, Actors: 80, Directors: 20, Companies: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := Build(db)
	// Pick two tokens from a joined pair to guarantee a connection.
	actor := db.Table("actor")
	acts := db.Table("acts")
	movie := db.Table("movie")
	arow, _ := acts.Row(0)
	aidIdx := acts.Schema.ColumnIndex("actor_id")
	midIdx := acts.Schema.ColumnIndex("movie_id")
	actorRows := actor.LookupEqual("id", arow.Values[aidIdx])
	movieRows := movie.LookupEqual("id", arow.Values[midIdx])
	aname, _ := actor.Value(actorRows[0], "name")
	mtitle, _ := movie.Value(movieRows[0], "title")
	kw1 := relstore.Tokenize(aname)[1]
	kw2 := relstore.Tokenize(mtitle)[0]
	trees, err := g.Search([]string{kw1, kw2}, Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 {
		t.Fatalf("no trees for %q %q", kw1, kw2)
	}
	for i, tr := range trees {
		if i > 0 && tr.Weight < trees[i-1].Weight {
			t.Fatal("trees not ordered by weight")
		}
		if !g.ContainsAll(tr, []string{kw1, kw2}) {
			t.Fatalf("tree misses keywords: %+v", tr)
		}
		if !g.Connected(tr) {
			t.Fatalf("tree not connected: %+v", tr)
		}
		if tr.Weight > 6 {
			t.Fatalf("MaxWeight default violated: %+v", tr)
		}
	}
	// No duplicate trees.
	seen := map[string]bool{}
	for _, tr := range trees {
		if seen[tr.Key()] {
			t.Fatalf("duplicate tree %s", tr.Key())
		}
		seen[tr.Key()] = true
	}
}

// TestAgreesWithSchemaBasedExecution: the data-based best tree matches
// the schema-based join result on the canonical example — the §2.2.3
// equivalence of the two families on simple queries.
func TestAgreesWithSchemaBasedExecution(t *testing.T) {
	db := movieDB(t)
	g := Build(db)
	trees, err := g.Search([]string{"hanks", "terminal"}, Options{K: 1})
	if err != nil || len(trees) != 1 {
		t.Fatalf("search: %v / %d trees", err, len(trees))
	}
	plan := &relstore.JoinPlan{
		Nodes: []relstore.JoinNode{
			{Table: "actor", Predicates: []relstore.Predicate{{Column: "name", Keywords: []string{"hanks"}}}},
			{Table: "acts"},
			{Table: "movie", Predicates: []relstore.Predicate{{Column: "title", Keywords: []string{"terminal"}}}},
		},
		Edges: []relstore.JoinEdge{
			{From: 1, To: 0, FromColumn: "actor_id", ToColumn: "id"},
			{From: 1, To: 2, FromColumn: "movie_id", ToColumn: "id"},
		},
	}
	jtts, err := db.Execute(plan, relstore.ExecuteOptions{})
	if err != nil || len(jtts) != 1 {
		t.Fatalf("execute: %v / %d", err, len(jtts))
	}
	// The schema-based JTT's tuples are exactly the data-based tree's nodes.
	want := map[Node]bool{}
	for i, node := range plan.Nodes {
		want[Node{Table: node.Table, Row: jtts[0].Rows[i]}] = true
	}
	for _, n := range trees[0].Nodes {
		if !want[n] {
			t.Fatalf("data-based tree node %v not in schema-based result", n)
		}
	}
	if len(trees[0].Nodes) != len(want) {
		t.Fatalf("tree size %d vs JTT size %d", len(trees[0].Nodes), len(want))
	}
}

func TestMaxVisitedSafetyValve(t *testing.T) {
	db, err := datagen.IMDB(datagen.IMDBConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := Build(db)
	// A tiny expansion budget must terminate quickly and cleanly.
	if _, err := g.Search([]string{"the"}, Options{K: 1000, MaxVisited: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeString(t *testing.T) {
	if (Node{Table: "actor", Row: 3}).String() != "actor#3" {
		t.Fatal("Node.String")
	}
}
