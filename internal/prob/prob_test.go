package prob

import (
	"math"
	"testing"

	"repro/internal/invindex"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/schemagraph"
)

type fixture struct {
	db  *relstore.Database
	ix  *invindex.Index
	cat *query.Catalog
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	db := relstore.NewDatabase("movies")
	must := func(s *relstore.TableSchema) *relstore.Table {
		tb, err := db.CreateTable(s)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	actor := must(&relstore.TableSchema{
		Name:       "actor",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	movie := must(&relstore.TableSchema{
		Name:       "movie",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "title", Indexed: true}, {Name: "year", Indexed: true}},
		PrimaryKey: "id",
	})
	acts := must(&relstore.TableSchema{
		Name:    "acts",
		Columns: []relstore.Column{{Name: "actor_id"}, {Name: "movie_id"}, {Name: "role", Indexed: true}},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
			{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
		},
	})
	ins := func(tb *relstore.Table, vals ...string) {
		t.Helper()
		if _, err := tb.Insert(vals...); err != nil {
			t.Fatal(err)
		}
	}
	// "hanks" dominates actor.name; "terminal" occurs once in movie.title.
	ins(actor, "a1", "Tom Hanks")
	ins(actor, "a2", "Colin Hanks")
	ins(actor, "a3", "Tom Cruise")
	ins(movie, "m1", "The Terminal", "2004")
	ins(movie, "m2", "Big", "1988")
	ins(acts, "a1", "m1", "Viktor")
	ins(acts, "a1", "m2", "Josh")
	ix := invindex.Build(db)
	g := schemagraph.FromDatabase(db)
	cat := query.BuildCatalog(g, schemagraph.EnumerateOptions{MaxNodes: 3})
	return &fixture{db: db, ix: ix, cat: cat}
}

func TestTemplatePriorUniform(t *testing.T) {
	f := newFixture(t)
	m := New(f.ix, f.cat, Config{})
	n := len(f.cat.Templates)
	want := 1 / float64(n)
	for _, tpl := range f.cat.Templates {
		if got := m.TemplatePrior(tpl); math.Abs(got-want) > 1e-12 {
			t.Fatalf("uniform prior = %v, want %v", got, want)
		}
	}
}

func TestTemplatePriorFromLog(t *testing.T) {
	f := newFixture(t)
	f.cat.RecordUsage(0, 85)
	f.cat.RecordUsage(1, 15)
	m := New(f.ix, f.cat, Config{UseTemplateLog: true})
	p0 := m.TemplatePrior(f.cat.Templates[0])
	p1 := m.TemplatePrior(f.cat.Templates[1])
	p2 := m.TemplatePrior(f.cat.Templates[2])
	if p0 <= p1 || p1 <= p2 {
		t.Fatalf("log priors not ordered by usage: %v %v %v", p0, p1, p2)
	}
	// Smoothing keeps unseen templates non-zero.
	if p2 <= 0 {
		t.Fatal("unseen template prior must stay positive")
	}
	// Priors sum to ~1 over the catalogue.
	sum := 0.0
	for _, tpl := range f.cat.Templates {
		sum += m.TemplatePrior(tpl)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("priors sum to %v", sum)
	}
}

func TestKeywordProb(t *testing.T) {
	f := newFixture(t)
	m := New(f.ix, f.cat, Config{})
	name := invindex.AttrRef{Table: "actor", Column: "name"}
	title := invindex.AttrRef{Table: "movie", Column: "title"}
	hanksName := query.KeywordInterpretation{Pos: 0, Keyword: "hanks", Kind: query.KindValue, Attr: name}
	hanksTitle := query.KeywordInterpretation{Pos: 0, Keyword: "hanks", Kind: query.KindValue, Attr: title}
	// "hanks" is typical in names, absent from titles: ATF behaviour.
	if m.KeywordProb(hanksName) <= m.KeywordProb(hanksTitle) {
		t.Fatal("ATF should prefer the typical attribute")
	}
	tbl := query.KeywordInterpretation{Pos: 0, Keyword: "actor", Kind: query.KindTable, Table: "actor"}
	if got := m.KeywordProb(tbl); got != 0.5 {
		t.Fatalf("schema-term prob = %v, want default 0.5", got)
	}
}

func TestScoreOrdersTypicalInterpretations(t *testing.T) {
	f := newFixture(t)
	m := New(f.ix, f.cat, Config{})
	c := query.GenerateCandidates(f.ix, []string{"hanks"}, query.GenerateOptionsConfig{})
	space := query.GenerateComplete(c, f.cat, query.GenerateConfig{})
	ranked := m.Rank(space)
	if len(ranked) == 0 {
		t.Fatal("empty ranking")
	}
	top := ranked[0].Q
	if top.Bindings[0].KI.Attr.String() != "actor.name" {
		t.Fatalf("top interpretation should bind hanks to actor.name, got %v", top)
	}
	// Probabilities normalise to 1 and are non-increasing.
	sum := 0.0
	for i, s := range ranked {
		sum += s.Prob
		if i > 0 && s.Score > ranked[i-1].Score {
			t.Fatal("ranking not sorted")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestScorePartialUsesPu(t *testing.T) {
	f := newFixture(t)
	m := New(f.ix, f.cat, Config{})
	c := query.GenerateCandidates(f.ix, []string{"hanks", "terminal"}, query.GenerateOptionsConfig{})
	space := query.GenerateComplete(c, f.cat, query.GenerateConfig{})
	var complete, partialScore float64
	for _, q := range space {
		s := m.Score(q)
		if q.IsComplete() && s > complete {
			complete = s
		}
	}
	// Build a partial interpretation by dropping one binding from a
	// complete one and verify Pu discounts it below the best complete.
	for _, q := range space {
		if q.IsComplete() && len(q.Bindings) == 2 && q.Template.Size() == 1 {
			partial := query.NewInterpretation(q.Keywords, q.Template, q.Bindings[:1])
			partialScore = m.Score(partial)
			break
		}
	}
	if partialScore == 0 {
		t.Skip("no single-table two-binding interpretation in fixture")
	}
	if partialScore >= complete {
		t.Fatalf("partial score %v should be below best complete %v", partialScore, complete)
	}
}

func TestCoOccurrenceBeatsSplit(t *testing.T) {
	f := newFixture(t)
	m := New(f.ix, f.cat, Config{UseCoOccurrence: true})
	c := query.GenerateCandidates(f.ix, []string{"tom", "hanks"}, query.GenerateOptionsConfig{})
	space := query.GenerateComplete(c, f.cat, query.GenerateConfig{})
	ranked := m.Rank(space)
	top := ranked[0].Q
	// The top interpretation must bind both keywords to actor.name of the
	// same occurrence (the "first + last name" effect of Equation 4.2).
	if len(top.Bindings) != 2 {
		t.Fatalf("top = %v", top)
	}
	for _, b := range top.Bindings {
		if b.KI.Attr.String() != "actor.name" {
			t.Fatalf("top should bind both keywords to actor.name: %v", top)
		}
	}
}

func TestScoreMonotoneInATF(t *testing.T) {
	f := newFixture(t)
	m := New(f.ix, f.cat, Config{})
	// Same template, same structure: score ordering follows ATF ordering.
	name := invindex.AttrRef{Table: "actor", Column: "name"}
	var tplActor *query.Template
	for _, tpl := range f.cat.Templates {
		if tpl.Size() == 1 && tpl.Tree.Tables[0] == "actor" {
			tplActor = tpl
		}
	}
	if tplActor == nil {
		t.Fatal("actor singleton template missing")
	}
	mk := func(kw string) *query.Interpretation {
		return query.NewInterpretation([]string{kw}, tplActor, []query.Binding{{
			KI:  query.KeywordInterpretation{Pos: 0, Keyword: kw, Kind: query.KindValue, Attr: name},
			Occ: 0,
		}})
	}
	// hanks occurs twice, cruise once.
	if m.Score(mk("hanks")) <= m.Score(mk("cruise")) {
		t.Fatal("score should be monotone in term frequency")
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{1}); got != 0 {
		t.Fatalf("Entropy(point mass) = %v", got)
	}
	if got := Entropy([]float64{0.5, 0.5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Entropy(fair coin) = %v, want 1", got)
	}
	if got := Entropy([]float64{0.5, 0.5, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("zero entries must not contribute: %v", got)
	}
	u := Entropy([]float64{0.25, 0.25, 0.25, 0.25})
	if math.Abs(u-2) > 1e-12 {
		t.Fatalf("Entropy(uniform 4) = %v, want 2", u)
	}
}

func TestNormalizedEntropy(t *testing.T) {
	if got := NormalizedEntropy([]float64{2, 2}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NormalizedEntropy = %v, want 1", got)
	}
	if got := NormalizedEntropy(nil); got != 0 {
		t.Fatalf("NormalizedEntropy(nil) = %v", got)
	}
	if got := NormalizedEntropy([]float64{0, 0}); got != 0 {
		t.Fatalf("NormalizedEntropy(zeros) = %v", got)
	}
	// Skewed distribution has lower entropy than uniform.
	if NormalizedEntropy([]float64{9, 1}) >= NormalizedEntropy([]float64{5, 5}) {
		t.Fatal("skew should reduce entropy")
	}
}

func TestConfigDefaults(t *testing.T) {
	f := newFixture(t)
	m := New(f.ix, f.cat, Config{})
	cfg := m.Config()
	if cfg.Alpha != 1 {
		t.Fatalf("default Alpha = %v", cfg.Alpha)
	}
	if cfg.SchemaTermProb != 0.5 {
		t.Fatalf("default SchemaTermProb = %v", cfg.SchemaTermProb)
	}
	if cfg.Pu <= 0 || cfg.Pu >= 1 {
		t.Fatalf("default Pu = %v out of (0,1)", cfg.Pu)
	}
	if m.Index() != f.ix || m.Catalog() != f.cat {
		t.Fatal("accessors wrong")
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	f := newFixture(t)
	m := New(f.ix, f.cat, Config{})
	c := query.GenerateCandidates(f.ix, []string{"hanks", "terminal"}, query.GenerateOptionsConfig{})
	space := query.GenerateComplete(c, f.cat, query.GenerateConfig{})
	r1 := m.Rank(space)
	// Reverse input order; ranking must be identical.
	rev := make([]*query.Interpretation, len(space))
	for i, q := range space {
		rev[len(space)-1-i] = q
	}
	r2 := m.Rank(rev)
	for i := range r1 {
		if r1[i].Q.Key() != r2[i].Q.Key() {
			t.Fatalf("ranking not deterministic at %d", i)
		}
	}
}
