package metrics

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text-format exposition, hand-rolled (the module takes no
// dependencies). PromText is an ordered builder of metric families:
// httpapi's /metrics handler feeds it counters, gauges, and
// LatencyHistograms and writes the result. CheckPromText is the strict
// parser the tests (and anyone consuming the endpoint from Go) use to
// hold the output to the format's rules — HELP/TYPE before samples,
// contiguous families, valid names, escaped label values, cumulative
// le buckets capped by +Inf == _count.

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// promSample is one exposition line within a family.
type promSample struct {
	suffix string // "", "_bucket", "_sum", "_count"
	labels []Label
	value  float64
}

type promFamily struct {
	name    string
	help    string
	typ     string
	samples []promSample
}

// PromText accumulates families in first-use order. Methods may be
// called repeatedly with the same name to add samples (e.g. one
// histogram per endpoint label); the first call fixes help and type.
type PromText struct {
	order []string
	fams  map[string]*promFamily
	err   error
}

// NewPromText returns an empty builder.
func NewPromText() *PromText {
	return &PromText{fams: make(map[string]*promFamily)}
}

func (p *PromText) family(name, help, typ string) *promFamily {
	if p.err != nil {
		return nil
	}
	if !validMetricName(name) {
		p.err = fmt.Errorf("prom: invalid metric name %q", name)
		return nil
	}
	f, ok := p.fams[name]
	if !ok {
		f = &promFamily{name: name, help: help, typ: typ}
		p.fams[name] = f
		p.order = append(p.order, name)
		return f
	}
	if f.typ != typ {
		p.err = fmt.Errorf("prom: metric %q redeclared as %s (was %s)", name, typ, f.typ)
		return nil
	}
	return f
}

// Counter adds one sample to a counter family. Value must be
// non-negative and finite.
func (p *PromText) Counter(name, help string, value float64, labels ...Label) {
	if value < 0 || math.IsNaN(value) || math.IsInf(value, 0) {
		p.fail(fmt.Errorf("prom: counter %q value %v", name, value))
		return
	}
	if f := p.family(name, help, "counter"); f != nil {
		f.samples = append(f.samples, promSample{labels: labels, value: value})
	}
}

// Gauge adds one sample to a gauge family.
func (p *PromText) Gauge(name, help string, value float64, labels ...Label) {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		p.fail(fmt.Errorf("prom: gauge %q value %v", name, value))
		return
	}
	if f := p.family(name, help, "gauge"); f != nil {
		f.samples = append(f.samples, promSample{labels: labels, value: value})
	}
}

func (p *PromText) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// defaultSecondsBuckets are the le boundaries HistogramNS exports,
// spanning sub-millisecond cache hits to multi-second stalls.
var defaultSecondsBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// HistogramNS adds one Prometheus histogram observation set from a
// nanosecond LatencyHistogram, converted to seconds with the default
// bucket boundaries. Bucket counts come from CumulativeLE, so each
// observation lands by its ≤1.6%-error representative value; _sum and
// _count are exact.
func (p *PromText) HistogramNS(name, help string, h *LatencyHistogram, labels ...Label) {
	f := p.family(name, help, "histogram")
	if f == nil {
		return
	}
	boundsNS := make([]int64, len(defaultSecondsBuckets))
	for i, s := range defaultSecondsBuckets {
		boundsNS[i] = int64(s * float64(time.Second))
	}
	var cum []int64
	var total, sumNS int64
	if h != nil {
		cum = h.CumulativeLE(boundsNS)
		total = h.Count()
		sumNS = h.sum
	} else {
		cum = make([]int64, len(boundsNS))
	}
	for i, le := range defaultSecondsBuckets {
		f.samples = append(f.samples, promSample{
			suffix: "_bucket",
			labels: append(append([]Label{}, labels...), Label{"le", formatFloat(le)}),
			value:  float64(cum[i]),
		})
	}
	f.samples = append(f.samples,
		promSample{suffix: "_bucket", labels: append(append([]Label{}, labels...), Label{"le", "+Inf"}), value: float64(total)},
		promSample{suffix: "_sum", labels: labels, value: float64(sumNS) / float64(time.Second)},
		promSample{suffix: "_count", labels: labels, value: float64(total)},
	)
}

// CumulativeLE counts recorded observations at or below each bound (in
// the histogram's native nanosecond unit; bounds must be ascending).
// Each stored bucket contributes at its representative midpoint, so
// the result inherits the histogram's ≤1.6% quantisation error.
func (h *LatencyHistogram) CumulativeLE(boundsNS []int64) []int64 {
	out := make([]int64, len(boundsNS))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		mid := bucketMid(i)
		// First bound >= mid gets the count (cumulated below).
		j := sort.Search(len(boundsNS), func(k int) bool { return boundsNS[k] >= mid })
		if j < len(boundsNS) {
			out[j] += c
		}
	}
	for i := 1; i < len(out); i++ {
		out[i] += out[i-1]
	}
	return out
}

// Bytes renders the exposition. An empty builder renders to nothing; a
// misuse recorded earlier surfaces here.
func (p *PromText) Bytes() ([]byte, error) {
	if p.err != nil {
		return nil, p.err
	}
	var b bytes.Buffer
	for _, name := range p.order {
		f := p.fams[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			b.WriteString(f.name)
			b.WriteString(s.suffix)
			if len(s.labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.labels {
					if !validLabelName(l.Name) {
						return nil, fmt.Errorf("prom: invalid label name %q on %s", l.Name, f.name)
					}
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l.Name)
					b.WriteString(`="`)
					b.WriteString(escapeLabelValue(l.Value))
					b.WriteString(`"`)
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.value))
			b.WriteByte('\n')
		}
	}
	return b.Bytes(), nil
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip representation, integers without an exponent.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue applies the exposition format's escape set:
// backslash, double quote, and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// CheckPromText strictly validates a text-format exposition: every
// family announced by HELP+TYPE before its samples, families
// contiguous and never reopened, names and label names well-formed, no
// duplicate sample (name + label set), values parseable, counters
// non-negative, and histogram le buckets cumulative with +Inf present
// and equal to _count. Returns nil when the payload is clean.
func CheckPromText(data []byte) error {
	type famState struct {
		typ      string
		hasHelp  bool
		closed   bool
		seen     map[string]bool // rendered sample keys for dup detection
		infCount map[string]float64
		count    map[string]float64
		lastLE   map[string]float64
		lastCum  map[string]float64
	}
	fams := make(map[string]*famState)
	var current string

	open := func(name string) *famState {
		f := fams[name]
		if f == nil {
			f = &famState{
				seen:     make(map[string]bool),
				infCount: make(map[string]float64),
				count:    make(map[string]float64),
				lastLE:   make(map[string]float64),
				lastCum:  make(map[string]float64),
			}
			fams[name] = f
		}
		return f
	}

	if len(data) > 0 && data[len(data)-1] != '\n' {
		return fmt.Errorf("prom: missing trailing newline")
	}
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			kind := line[2:6]
			rest := line[7:]
			sp := strings.IndexByte(rest, ' ')
			name := rest
			if sp >= 0 {
				name = rest[:sp]
			}
			if !validMetricName(name) {
				return fmt.Errorf("prom: line %d: invalid metric name %q", lineNo, name)
			}
			if current != "" && current != name && fams[current] != nil {
				fams[current].closed = true
			}
			f := open(name)
			if f.closed {
				return fmt.Errorf("prom: line %d: family %q reopened", lineNo, name)
			}
			current = name
			if kind == "HELP" {
				if f.hasHelp {
					return fmt.Errorf("prom: line %d: duplicate HELP for %q", lineNo, name)
				}
				f.hasHelp = true
			} else {
				if f.typ != "" {
					return fmt.Errorf("prom: line %d: duplicate TYPE for %q", lineNo, name)
				}
				if sp < 0 {
					return fmt.Errorf("prom: line %d: TYPE without a type", lineNo)
				}
				typ := rest[sp+1:]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = typ
				default:
					return fmt.Errorf("prom: line %d: unknown type %q", lineNo, typ)
				}
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // plain comment
		}

		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("prom: line %d: %w", lineNo, err)
		}
		base := name
		suffix := ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, sfx)
			if trimmed != name {
				if f, ok := fams[trimmed]; ok && f.typ == "histogram" {
					base, suffix = trimmed, sfx
				}
				break
			}
		}
		f, ok := fams[base]
		if !ok || f.typ == "" || !f.hasHelp {
			return fmt.Errorf("prom: line %d: sample %q before HELP+TYPE", lineNo, name)
		}
		if base != current {
			return fmt.Errorf("prom: line %d: sample %q outside its family block (current %q)", lineNo, name, current)
		}
		if f.typ == "histogram" && suffix == "" {
			return fmt.Errorf("prom: line %d: bare sample %q in histogram family", lineNo, name)
		}
		if f.typ != "histogram" && suffix != "" {
			suffix = "" // _sum etc. only special for histograms
		}

		key := name + "|" + labelKey(labels, "")
		if f.seen[key] {
			return fmt.Errorf("prom: line %d: duplicate sample %s", lineNo, key)
		}
		f.seen[key] = true

		if f.typ == "counter" && value < 0 {
			return fmt.Errorf("prom: line %d: negative counter %s", lineNo, name)
		}
		if f.typ == "histogram" {
			group := labelKey(labels, "le")
			switch suffix {
			case "_bucket":
				leStr, ok := labels["le"]
				if !ok {
					return fmt.Errorf("prom: line %d: bucket without le", lineNo)
				}
				le := math.Inf(1)
				if leStr != "+Inf" {
					le, err = strconv.ParseFloat(leStr, 64)
					if err != nil {
						return fmt.Errorf("prom: line %d: bad le %q", lineNo, leStr)
					}
				}
				if prev, ok := f.lastLE[group]; ok && le <= prev {
					return fmt.Errorf("prom: line %d: le not ascending (%v after %v)", lineNo, le, prev)
				}
				if prev, ok := f.lastCum[group]; ok && value < prev {
					return fmt.Errorf("prom: line %d: bucket counts not cumulative (%v after %v)", lineNo, value, prev)
				}
				f.lastLE[group] = le
				f.lastCum[group] = value
				if math.IsInf(le, 1) {
					f.infCount[group] = value
				}
			case "_count":
				f.count[group] = value
			}
		}
	}
	for name, f := range fams {
		if f.typ == "" || !f.hasHelp {
			return fmt.Errorf("prom: family %q missing HELP or TYPE", name)
		}
		if f.typ == "histogram" {
			for group, cnt := range f.count {
				inf, ok := f.infCount[group]
				if !ok {
					return fmt.Errorf("prom: histogram %q group {%s} has no +Inf bucket", name, group)
				}
				if inf != cnt {
					return fmt.Errorf("prom: histogram %q group {%s}: +Inf %v != count %v", name, group, inf, cnt)
				}
			}
			if len(f.count) == 0 {
				return fmt.Errorf("prom: histogram %q has no _count", name)
			}
		}
	}
	return nil
}

// labelKey renders a label set deterministically, omitting one label
// name (pass "" to keep all).
func labelKey(labels map[string]string, omit string) string {
	names := make([]string, 0, len(labels))
	for n := range labels {
		if n == omit {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(labels[n])
	}
	return b.String()
}

// parsePromSample parses `name{l="v",...} value` (no timestamp support
// — the builder never emits one).
func parsePromSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = make(map[string]string)
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid sample name %q", name)
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				return "", nil, 0, fmt.Errorf("unterminated label set")
			}
			if line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j >= len(line) {
				return "", nil, 0, fmt.Errorf("label without value")
			}
			lname := line[i:j]
			if !validLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			if j+1 >= len(line) || line[j+1] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value")
			}
			k := j + 2
			var val strings.Builder
			for {
				if k >= len(line) {
					return "", nil, 0, fmt.Errorf("unterminated label value")
				}
				c := line[k]
				if c == '\\' {
					if k+1 >= len(line) {
						return "", nil, 0, fmt.Errorf("dangling escape")
					}
					switch line[k+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("bad escape \\%c", line[k+1])
					}
					k += 2
					continue
				}
				if c == '"' {
					k++
					break
				}
				val.WriteByte(c)
				k++
			}
			if _, dup := labels[lname]; dup {
				return "", nil, 0, fmt.Errorf("duplicate label %q", lname)
			}
			labels[lname] = val.String()
			i = k
			if i < len(line) && line[i] == ',' {
				i++
			}
		}
	}
	if i >= len(line) || line[i] != ' ' {
		return "", nil, 0, fmt.Errorf("missing value separator")
	}
	valStr := strings.TrimSpace(line[i+1:])
	if valStr == "+Inf" || valStr == "-Inf" || valStr == "NaN" {
		return "", nil, 0, fmt.Errorf("non-finite sample value %q", valStr)
	}
	value, err = strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q", valStr)
	}
	return name, labels, value, nil
}
