package invindex

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/durable"
	"repro/internal/relstore"
)

// snapshotIndex builds an index over the apply-test database after a
// mutation batch, so the snapshot carries tombstone-shaped postings.
func snapshotIndex(t *testing.T) (*Index, *relstore.Database) {
	t.Helper()
	db := applyTestDB(t)
	ix := Build(db)
	ndb, changes, err := db.Apply([]relstore.Mutation{
		{Op: relstore.OpDelete, Table: "person", Key: "p2"},
		{Op: relstore.OpInsert, Table: "person", Values: []string{"p9", "Fresh Newcomer", "new in town"}},
		{Op: relstore.OpUpdate, Table: "city", Key: "c1", Values: []string{"c1", "greater london"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix.Apply(ndb, changes), ndb
}

func TestIndexSnapshotRoundTrip(t *testing.T) {
	ix, db := snapshotIndex(t)
	var enc durable.Enc
	ix.EncodeSnapshot(&enc)
	got, err := DecodeSnapshot(durable.NewDec(enc.Bytes()), db)
	if err != nil {
		t.Fatal(err)
	}
	assertIndexesEqual(t, got, ix)
	if got.TotalDocs() != ix.TotalDocs() {
		t.Fatalf("TotalDocs = %d, want %d", got.TotalDocs(), ix.TotalDocs())
	}
	if !reflect.DeepEqual(got.schemaTables, ix.schemaTables) {
		t.Fatalf("schemaTables diverged: %v vs %v", got.schemaTables, ix.schemaTables)
	}
	if !reflect.DeepEqual(got.schemaColumns, ix.schemaColumns) {
		t.Fatalf("schemaColumns diverged: %v vs %v", got.schemaColumns, ix.schemaColumns)
	}
}

func TestIndexSnapshotByteStable(t *testing.T) {
	ix, db := snapshotIndex(t)
	var e1, e2 durable.Enc
	ix.EncodeSnapshot(&e1)
	ix.EncodeSnapshot(&e2)
	if !bytes.Equal(e1.Bytes(), e2.Bytes()) {
		t.Fatal("same index encoded to different bytes")
	}
	decoded, err := DecodeSnapshot(durable.NewDec(e1.Bytes()), db)
	if err != nil {
		t.Fatal(err)
	}
	var e3 durable.Enc
	decoded.EncodeSnapshot(&e3)
	if !bytes.Equal(e1.Bytes(), e3.Bytes()) {
		t.Fatal("decode→encode did not reproduce the bytes")
	}
}

func TestIndexSnapshotRejectsCorruption(t *testing.T) {
	ix, db := snapshotIndex(t)
	var enc durable.Enc
	ix.EncodeSnapshot(&enc)
	raw := enc.Bytes()
	for _, cut := range []int{0, 3, len(raw) / 2} {
		if _, err := DecodeSnapshot(durable.NewDec(raw[:cut]), db); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// An index over a different schema must be rejected.
	other := relstore.NewDatabase("other")
	if _, err := other.CreateTable(&relstore.TableSchema{
		Name:    "thing",
		Columns: []relstore.Column{{Name: "body", Indexed: true}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(durable.NewDec(raw), other); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}
