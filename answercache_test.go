package keysearch

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/datagen"
)

// answerCacheTestBudget is generous enough that differential runs hit
// the cache constantly (the point is correctness under hits, not
// eviction pressure — eviction has its own tests in internal/qcache).
const answerCacheTestBudget = 4 << 20

// churnEngine builds a mid-sized mutable engine for the differential
// tests. Each call constructs its own database, so cache-on and
// cache-off engines never share mutable state.
func churnEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	db, err := datagen.IMDB(datagen.IMDBConfig{Movies: 40, Actors: 30, Directors: 8, Companies: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	eng := fromDatabase(db, append([]Option{WithMutations(), WithCoOccurrence()}, opts...)...)
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestWithAnswerCacheGating(t *testing.T) {
	if eng := builtEngine(t); eng.AnswerCacheEnabled() {
		t.Fatal("answer cache on by default")
	}
	if eng := builtEngine(t, WithAnswerCache(1<<20)); !eng.AnswerCacheEnabled() {
		t.Fatal("WithAnswerCache did not enable the cache")
	}
	// The execution cache is the promotion source; without it the
	// answer cache must stay off.
	eng := builtEngine(t, WithAnswerCache(1<<20), WithExecutionCache(false))
	if eng.AnswerCacheEnabled() {
		t.Fatal("answer cache enabled without the execution cache")
	}
	if _, ok := eng.AnswerCacheStats(); ok {
		t.Fatal("stats reported for a disabled cache")
	}
}

func TestAnswerCacheServesHits(t *testing.T) {
	eng := builtEngine(t, WithAnswerCache(1<<20))
	for i := 0; i < 3; i++ {
		if _, err := eng.SearchRows(bg, RowsRequest{Query: "hanks", K: 3}); err != nil {
			t.Fatal(err)
		}
	}
	stats, ok := eng.AnswerCacheStats()
	if !ok {
		t.Fatal("stats unavailable")
	}
	if stats.Hits == 0 || stats.Entries == 0 {
		t.Fatalf("repeated query never hit the cache: %+v", stats)
	}
	if stats.HighWaterBytes > stats.BudgetBytes {
		t.Fatalf("budget exceeded: %+v", stats)
	}
}

// TestAnswerCacheDifferentialChurn interleaves randomized Apply batches
// with repeated searches and asserts byte-identical responses between a
// cache-on and a cache-off engine at every step. The query set repeats
// across rounds, so later rounds exercise genuine cache hits, the
// invalidation of entries the batches touched, and re-publication —
// exactly the churn regime the footprint-intersection argument covers.
func TestAnswerCacheDifferentialChurn(t *testing.T) {
	on := churnEngine(t, WithAnswerCache(answerCacheTestBudget))
	off := churnEngine(t)

	queries := append(off.SampleQueries(4), "north south", "matrix runner")
	compare := func(round int) {
		t.Helper()
		for _, q := range queries {
			for name, run := range map[string]func(e *Engine) (any, error){
				"search": func(e *Engine) (any, error) {
					return e.Search(bg, SearchRequest{Query: q, K: 5, RowLimit: 3})
				},
				"rows": func(e *Engine) (any, error) {
					return e.SearchRows(bg, RowsRequest{Query: q, K: 5})
				},
				"diversify": func(e *Engine) (any, error) {
					return e.Diversify(bg, DiversifyRequest{Query: q, K: 4, Lambda: 0.5})
				},
			} {
				got, gotErr := run(on)
				want, wantErr := run(off)
				gj, wj := asJSON(t, got, gotErr), asJSON(t, want, wantErr)
				if gj != wj {
					t.Fatalf("round %d: %s(%q) diverges with the answer cache on:\n  cache-on:  %.300s\n  cache-off: %.300s",
						round, name, q, gj, wj)
				}
			}
		}
	}

	compare(0) // cold
	compare(0) // warm: second pass serves from the cache

	rng := rand.New(rand.NewSource(7))
	serial := 0
	for round := 1; round <= 6; round++ {
		muts := randomMutations(rng, on, 1+rng.Intn(5), &serial)
		if _, err := on.Apply(bg, muts); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if _, err := off.Apply(bg, muts); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		compare(round)
	}

	stats, _ := on.AnswerCacheStats()
	if stats.Hits == 0 {
		t.Fatalf("differential run never hit the cache — the comparison was vacuous: %+v", stats)
	}
	if stats.Invalidations == 0 {
		t.Fatalf("mutation churn never invalidated an entry — the comparison was vacuous: %+v", stats)
	}
	if stats.HighWaterBytes > stats.BudgetBytes {
		t.Fatalf("budget exceeded under churn: %+v", stats)
	}
}

// TestAnswerCacheWarmRestartDifferential checkpoints a durable engine
// with a warm answer cache, recovers it with Open, and asserts (a) the
// cache actually restarted warm and (b) responses after the warm
// restart are byte-identical to a cache-off recovery of the same
// directory — including after fresh mutation churn on both.
func TestAnswerCacheWarmRestartDifferential(t *testing.T) {
	dir := t.TempDir()
	opts := []Option{WithMutations(), WithCoOccurrence(), WithAnswerCache(answerCacheTestBudget)}

	eng := churnEngine(t, append([]Option{WithDurability(dir)}, opts[2:]...)...)
	queries := eng.SampleQueries(3)
	warm := func(e *Engine) {
		t.Helper()
		for _, q := range queries {
			if _, err := e.SearchRows(bg, RowsRequest{Query: q, K: 5}); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Diversify(bg, DiversifyRequest{Query: q, K: 4, Lambda: 0.5}); err != nil {
				t.Fatal(err)
			}
		}
	}
	rng := rand.New(rand.NewSource(13))
	serial := 0
	warm(eng)
	if _, err := eng.Apply(bg, randomMutations(rng, eng, 3, &serial)); err != nil {
		t.Fatal(err)
	}
	warm(eng)
	if _, err := eng.Checkpoint(bg); err != nil {
		t.Fatal(err)
	}
	// Mutations after the checkpoint land in the WAL: recovery must
	// replay them THROUGH the cache's invalidation path.
	if _, err := eng.Apply(bg, randomMutations(rng, eng, 3, &serial)); err != nil {
		t.Fatal(err)
	}
	warm(eng)
	if err := eng.Close(); err != nil { // final checkpoint persists the hot set
		t.Fatal(err)
	}

	// Warm recovery first. (Order matters: every Close rewrites the
	// snapshot via a final checkpoint, and a cache-off engine writes no
	// qcache section — opening the oracle first would strip the hot set
	// before the warm open got to see it.)
	onEng, err := Open(dir, WithMutations(), WithAnswerCache(answerCacheTestBudget))
	if err != nil {
		t.Fatal(err)
	}
	stats, ok := onEng.AnswerCacheStats()
	if !ok || stats.Entries == 0 {
		t.Fatalf("recovery did not restore a warm cache: %+v (ok=%v)", stats, ok)
	}
	warmResp := make(map[string]string)
	for _, q := range queries {
		r, rErr := onEng.SearchRows(bg, RowsRequest{Query: q, K: 5})
		warmResp["rows:"+q] = asJSON(t, r, rErr)
		d, dErr := onEng.Diversify(bg, DiversifyRequest{Query: q, K: 4, Lambda: 0.5})
		warmResp["div:"+q] = asJSON(t, d, dErr)
	}
	warmStats, _ := onEng.AnswerCacheStats()
	if warmStats.Hits == 0 {
		t.Fatalf("restored hot set never served a hit: %+v", warmStats)
	}
	if err := onEng.Close(); err != nil {
		t.Fatal(err)
	}

	// Cache-off recovery of the same directory: the oracle.
	offEng, err := Open(dir, WithMutations())
	if err != nil {
		t.Fatal(err)
	}
	defer offEng.Close()
	nonTrivial := 0
	for _, q := range queries {
		r, rErr := offEng.SearchRows(bg, RowsRequest{Query: q, K: 5})
		wantRows := asJSON(t, r, rErr)
		d, dErr := offEng.Diversify(bg, DiversifyRequest{Query: q, K: 4, Lambda: 0.5})
		wantDiv := asJSON(t, d, dErr)
		if warmResp["rows:"+q] != wantRows {
			t.Fatalf("SearchRows(%q) diverges after warm restart:\n  warm:   %.300s\n  oracle: %.300s", q, warmResp["rows:"+q], wantRows)
		}
		if warmResp["div:"+q] != wantDiv {
			t.Fatalf("Diversify(%q) diverges after warm restart:\n  warm:   %.300s\n  oracle: %.300s", q, warmResp["div:"+q], wantDiv)
		}
		if len(wantRows) > len(`{"query":"`)+len(q)+2 {
			nonTrivial++
		}
	}
	if nonTrivial == 0 {
		t.Fatal("warm-restart comparison was vacuous: every response empty")
	}
}

// TestAnswerCacheConcurrentChurn hammers a cache-on engine with
// concurrent repeated searches while the writer toggles a sentinel row,
// under -race: every reader must observe one of the legal pre/post
// responses, never a torn or stale-cache mixture.
func TestAnswerCacheConcurrentChurn(t *testing.T) {
	eng := builtEngine(t, WithMutations(), WithAnswerCache(answerCacheTestBudget))

	search := func(q string) string {
		resp, err := eng.Search(bg, SearchRequest{Query: q, K: 3, RowLimit: 2})
		if err != nil {
			return "error: " + err.Error()
		}
		b, _ := json.Marshal(resp)
		return string(b)
	}
	rows := func(q string) string {
		resp, err := eng.SearchRows(bg, RowsRequest{Query: q, K: 3})
		if err != nil {
			return "error: " + err.Error()
		}
		b, _ := json.Marshal(resp)
		return string(b)
	}
	toggle := func(v string) {
		if _, err := eng.Apply(bg, []Mutation{{Op: OpUpdate, Table: "movie", Key: "m1", Values: []string{"m1", "The Terminal " + v, "2004"}}}); err != nil {
			t.Fatal(err)
		}
	}
	// Enumerate the legal responses for both entry points by toggling
	// once before starting the race.
	legal := map[string]bool{search("terminal"): true, rows("terminal"): true}
	toggle("Redux")
	legal[search("terminal")] = true
	legal[rows("terminal")] = true
	toggle("")
	legal[search("terminal")] = true
	legal[rows("terminal")] = true

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := search("terminal"); !legal[got] {
					select {
					case errs <- got:
					default:
					}
					return
				}
				if got := rows("terminal"); !legal[got] {
					select {
					case errs <- got:
					default:
					}
					return
				}
			}
		}()
	}
	for i := 0; i < 30; i++ {
		toggle("Redux")
		toggle("")
	}
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("reader observed illegal response with the answer cache on: %.300s", e)
	}
	stats, _ := eng.AnswerCacheStats()
	if stats.HighWaterBytes > stats.BudgetBytes {
		t.Fatalf("budget exceeded under concurrency: %+v", stats)
	}
}
