package admission

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// Governor ties the sampler, the AIMD controller, and a resizable
// gate together. Request completions are recorded into the current
// window; when the injected clock passes the window boundary the
// window is rotated into the controller and the gate is resized to
// the controller's new limit. Rotation is lazy — it happens on the
// completion that crosses the boundary — so the governor needs no
// background goroutine and is fully deterministic under a fake clock.
type Governor struct {
	mu        sync.Mutex
	now       func() time.Time
	window    time.Duration
	windowEnd time.Time
	hist      *metrics.LatencyHistogram
	completed int
	ctrl      *Controller
	gate      *Gate

	// svcEWMA is the exponentially-weighted mean service time in
	// nanoseconds, fed to RetryAfter so shed responses reflect the
	// observed drain rate rather than a constant.
	svcEWMA float64
}

// NewGovernor builds a governor over the given controller and gate
// (gate may be nil for pure control-loop tests). now is the clock —
// inject a fake in tests; window is the aggregation interval.
func NewGovernor(ctrl *Controller, gate *Gate, window time.Duration, now func() time.Time) *Governor {
	if now == nil {
		now = time.Now
	}
	if window <= 0 {
		window = 500 * time.Millisecond
	}
	g := &Governor{
		now:       now,
		window:    window,
		hist:      metrics.NewLatencyHistogram(),
		ctrl:      ctrl,
		gate:      gate,
		windowEnd: now().Add(window),
	}
	if gate != nil {
		gate.SetLimit(ctrl.Limit())
	}
	return g
}

// ObserveCompletion records one finished request's service time and
// rotates the window if the clock has crossed the boundary.
func (g *Governor) ObserveCompletion(d time.Duration) {
	g.mu.Lock()
	g.hist.Record(d)
	g.completed++
	const decay = 0.1
	if g.svcEWMA == 0 {
		g.svcEWMA = float64(d)
	} else {
		g.svcEWMA = (1-decay)*g.svcEWMA + decay*float64(d)
	}
	now := g.now()
	var resize int
	rotated := false
	if !now.Before(g.windowEnd) {
		g.ctrl.Observe(Window{Completed: g.completed, P99: g.hist.Quantile(0.99)})
		g.hist = metrics.NewLatencyHistogram()
		g.completed = 0
		g.windowEnd = now.Add(g.window)
		resize = g.ctrl.Limit()
		rotated = true
	}
	g.mu.Unlock()
	if rotated && g.gate != nil {
		g.gate.SetLimit(resize)
	}
}

// Limit returns the controller's current limit.
func (g *Governor) Limit() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ctrl.Limit()
}

// AvgService returns the EWMA service time (zero before any
// completion).
func (g *Governor) AvgService() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return time.Duration(g.svcEWMA)
}

// State snapshots the controller for /healthz.
func (g *Governor) State() ControllerState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ctrl.State()
}
