package keysearch

import (
	"math/rand"
	"testing"
)

// shardCounts is the differential sweep of the acceptance bar: 1 shard
// behind the coordinator path, non-power-of-two counts, and a count
// comfortably above GOMAXPROCS.
var shardCounts = []int{1, 2, 3, 8}

// shardedChurnEngines builds one unsharded oracle plus coordinated
// engines at every shard count, all over identically generated data.
func shardedChurnEngines(t *testing.T, opts ...Option) (*Engine, map[int]*ShardedEngine) {
	t.Helper()
	oracle := churnEngine(t, opts...)
	sharded := make(map[int]*ShardedEngine, len(shardCounts))
	for _, n := range shardCounts {
		se, err := NewShardedEngine(n, churnEngine(t, opts...))
		if err != nil {
			t.Fatal(err)
		}
		sharded[n] = se
	}
	return oracle, sharded
}

// TestShardedDifferentialChurn runs the randomized churn workload of
// TestAnswerCacheDifferentialChurn across shard counts {1, 2, 3, 8}:
// every mutation batch is applied to the unsharded oracle and to every
// sharded engine, and every response — search with previews, global
// top-k rows, diversify — must be byte-identical to the oracle's at
// every shard count, at every step.
func TestShardedDifferentialChurn(t *testing.T) {
	oracle, sharded := shardedChurnEngines(t)

	queries := append(oracle.SampleQueries(4), "north south", "matrix runner")
	compare := func(round int) {
		t.Helper()
		for _, q := range queries {
			for name, run := range map[string]func(e Searcher) (any, error){
				"search": func(e Searcher) (any, error) {
					return e.Search(bg, SearchRequest{Query: q, K: 5, RowLimit: 3})
				},
				"rows": func(e Searcher) (any, error) {
					return e.SearchRows(bg, RowsRequest{Query: q, K: 5})
				},
				"diversify": func(e Searcher) (any, error) {
					return e.Diversify(bg, DiversifyRequest{Query: q, K: 4, Lambda: 0.5})
				},
			} {
				want, wantErr := run(oracle)
				wj := asJSON(t, want, wantErr)
				for _, n := range shardCounts {
					got, gotErr := run(sharded[n])
					gj := asJSON(t, got, gotErr)
					if gj != wj {
						t.Fatalf("round %d: %s(%q) diverges at %d shards:\n  sharded:   %.300s\n  unsharded: %.300s",
							round, name, q, n, gj, wj)
					}
				}
			}
		}
	}

	compare(0)

	rng := rand.New(rand.NewSource(7))
	serial := 0
	for round := 1; round <= 6; round++ {
		muts := randomMutations(rng, oracle, 1+rng.Intn(5), &serial)
		if _, err := oracle.Apply(bg, muts); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, n := range shardCounts {
			if _, err := sharded[n].Apply(bg, muts); err != nil {
				t.Fatalf("round %d (%d shards): %v", round, n, err)
			}
		}
		compare(round)
	}

	// Non-vacuity + stats consistency: every coordinator scattered real
	// work, its shards' row counts account for every live row, and the
	// healthz-visible result totals agree across shard counts.
	var wantMerged int64 = -1
	for _, n := range shardCounts {
		se := sharded[n]
		st := se.Stats()
		if st.Shards == nil || st.Shards.Count != n || len(st.Shards.Shards) != n {
			t.Fatalf("%d shards: malformed stats block %+v", n, st.Shards)
		}
		if st.Shards.Scatters == 0 || st.Shards.CountScatters == 0 {
			t.Fatalf("%d shards: differential never scattered (scatters=%d count=%d)",
				n, st.Shards.Scatters, st.Shards.CountScatters)
		}
		rows := 0
		for _, sh := range st.Shards.Shards {
			rows += sh.Rows
		}
		if rows != se.Engine().NumRows() {
			t.Fatalf("%d shards: per-shard rows sum %d != engine live rows %d", n, rows, se.Engine().NumRows())
		}
		if n > 1 {
			occupied := 0
			for _, sh := range st.Shards.Shards {
				if sh.Rows > 0 {
					occupied++
				}
			}
			if occupied < 2 {
				t.Fatalf("%d shards: ownership degenerate, only %d shard(s) hold rows", n, occupied)
			}
		}
		// Identical request streams must merge identical result totals at
		// every shard count — the /healthz result-count half of the
		// acceptance bar.
		if wantMerged < 0 {
			wantMerged = st.Shards.MergedResults
		} else if st.Shards.MergedResults != wantMerged {
			t.Fatalf("%d shards: merged_results %d != %d at other shard counts",
				n, st.Shards.MergedResults, wantMerged)
		}
	}
	if wantMerged == 0 {
		t.Fatal("differential run merged zero results — the comparison was vacuous")
	}
}

// TestShardedDifferentialAnswerCache reruns a shorter churn sweep with
// the engine-lifetime answer cache on everywhere: coordinator-level
// consult/publish of merged streams plus footprint invalidation must
// keep sharded responses byte-identical to the unsharded cache-on
// oracle, and the sharded caches must actually serve hits.
func TestShardedDifferentialAnswerCache(t *testing.T) {
	oracle, sharded := shardedChurnEngines(t, WithAnswerCache(answerCacheTestBudget))

	queries := append(oracle.SampleQueries(3), "matrix runner")
	compare := func(round int) {
		t.Helper()
		for _, q := range queries {
			want, wantErr := oracle.SearchRows(bg, RowsRequest{Query: q, K: 5})
			wj := asJSON(t, want, wantErr)
			dwant, dwantErr := oracle.Diversify(bg, DiversifyRequest{Query: q, K: 4, Lambda: 0.5})
			dwj := asJSON(t, dwant, dwantErr)
			for _, n := range shardCounts {
				got, gotErr := sharded[n].SearchRows(bg, RowsRequest{Query: q, K: 5})
				if gj := asJSON(t, got, gotErr); gj != wj {
					t.Fatalf("round %d: SearchRows(%q) diverges at %d shards with cache on:\n  sharded:   %.300s\n  unsharded: %.300s",
						round, q, n, gj, wj)
				}
				dgot, dgotErr := sharded[n].Diversify(bg, DiversifyRequest{Query: q, K: 4, Lambda: 0.5})
				if dgj := asJSON(t, dgot, dgotErr); dgj != dwj {
					t.Fatalf("round %d: Diversify(%q) diverges at %d shards with cache on:\n  sharded:   %.300s\n  unsharded: %.300s",
						round, q, n, dgj, dwj)
				}
			}
		}
	}

	compare(0) // cold
	compare(0) // warm: merged streams now serve from the shared cache

	rng := rand.New(rand.NewSource(21))
	serial := 0
	for round := 1; round <= 3; round++ {
		muts := randomMutations(rng, oracle, 1+rng.Intn(4), &serial)
		if _, err := oracle.Apply(bg, muts); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, n := range shardCounts {
			if _, err := sharded[n].Apply(bg, muts); err != nil {
				t.Fatalf("round %d (%d shards): %v", round, n, err)
			}
		}
		compare(round)
	}

	for _, n := range shardCounts {
		stats, ok := sharded[n].Engine().AnswerCacheStats()
		if !ok || stats.Hits == 0 {
			t.Fatalf("%d shards: answer cache never hit — cache-on differential was vacuous: %+v", n, stats)
		}
		if stats.Invalidations == 0 {
			t.Fatalf("%d shards: churn never invalidated a cached answer: %+v", n, stats)
		}
	}
}

// TestShardedRowAccounting pins the mutation-routing contract: per-shard
// row counts stay exact across Apply batches (incremental observer
// path) and across checkpoint compaction (pointer-invalidation path),
// and epochs advance in lockstep with the wrapped engine.
func TestShardedRowAccounting(t *testing.T) {
	se, err := NewShardedEngine(3, churnEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	checkRows := func(when string) {
		t.Helper()
		st := se.Stats()
		sum := 0
		for _, sh := range st.Shards.Shards {
			sum += sh.Rows
		}
		if sum != se.Engine().NumRows() {
			t.Fatalf("%s: per-shard rows sum %d != live rows %d", when, sum, se.Engine().NumRows())
		}
		if st.Epoch != se.Engine().Epoch() {
			t.Fatalf("%s: stats epoch %d != engine epoch %d", when, st.Epoch, se.Engine().Epoch())
		}
	}
	checkRows("fresh")

	rng := rand.New(rand.NewSource(3))
	serial := 0
	for i := 0; i < 5; i++ {
		if _, err := se.Apply(bg, randomMutations(rng, se.Engine(), 2+rng.Intn(4), &serial)); err != nil {
			t.Fatal(err)
		}
		checkRows("after batch")
	}

	if se.Engine().Epoch() == 0 {
		t.Fatal("churn batches never advanced the epoch")
	}
	if _, err := NewShardedEngine(2, se.Engine()); err == nil {
		t.Fatal("double coordination of one engine must be rejected")
	}
	if _, err := NewShardedEngine(0, churnEngine(t)); err == nil {
		t.Fatal("shard count 0 must be rejected")
	}
}
