package expt

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/metrics"
)

func movieEnv(t *testing.T) (*Env, []datagen.Intent) {
	t.Helper()
	env, err := NewMovieEnv(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	intents := datagen.MovieWorkload(env.DB, datagen.WorkloadConfig{Queries: 20, MultiConceptFraction: 0.5, Seed: 2})
	return env, intents
}

func musicEnv(t *testing.T) (*Env, []datagen.Intent) {
	t.Helper()
	env, err := NewMusicEnv(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	intents := datagen.MusicWorkload(env.DB, datagen.WorkloadConfig{Queries: 15, MultiConceptFraction: 0.5, Seed: 2})
	return env, intents
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tb.AddRow(1, 2.5)
	tb.Notes = append(tb.Notes, "hello")
	s := tb.String()
	for _, want := range []string{"== T ==", "a", "bb", "2.500", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFig3_5ShapesHold(t *testing.T) {
	env, err := NewMovieEnv(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 3.5 workload: predominantly multi-concept queries of 2–5
	// terms (the thesis workload averages four terms).
	intents := datagen.MovieWorkload(env.DB, datagen.WorkloadConfig{
		Queries: 40, MultiConceptFraction: 0.7, Seed: 2,
	})
	res, err := Fig3_5(env, intents, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ATF) < 20 {
		t.Fatalf("too few usable queries: %d", len(res.ATF))
	}
	// The paper's claim: informed estimates cut the interaction cost vs
	// the uniform baseline (≈50% in the thesis; our attribute-granularity
	// spaces are smaller, so we require a strict mean improvement —
	// EXPERIMENTS.md records the magnitude).
	if metrics.Mean(res.ATF) >= metrics.Mean(res.Baseline) {
		t.Fatalf("ATF (%.2f) did not beat baseline (%.2f)",
			metrics.Mean(res.ATF), metrics.Mean(res.Baseline))
	}
	if len(res.Table.Rows) != len(res.ATF) {
		t.Fatal("table rows inconsistent with samples")
	}
}

func TestFig3_5TemplateLogHelpsSkewedDataset(t *testing.T) {
	env, intents := musicEnv(t)
	res, err := Fig3_5(env, intents, 0.85, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ATF) < 5 {
		t.Skipf("too few usable queries: %d", len(res.ATF))
	}
	// Lyrics-like skewed logs: the log prior must not hurt on average.
	if metrics.Mean(res.ATFLog) > metrics.Mean(res.ATF)+1.0 {
		t.Fatalf("skewed template log hurt construction: %.2f vs %.2f",
			metrics.Mean(res.ATFLog), metrics.Mean(res.ATF))
	}
}

func TestFig3_6VarianceShape(t *testing.T) {
	env, intents := movieEnv(t)
	res, err := Fig3_6(env, intents)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Construction) < 5 {
		t.Fatalf("too few samples: %d", len(res.Construction))
	}
	rank := metrics.Summarize(res.RankIQP)
	cons := metrics.Summarize(res.Construction)
	// Figure 3.6: construction has a much lower worst case than ranking
	// whenever ranking has hard queries.
	if rank.Max > 20 && cons.Max >= rank.Max {
		t.Fatalf("construction worst case (%v) should undercut ranking (%v)", cons.Max, rank.Max)
	}
	// Sanity: all three series populated and positive.
	for _, s := range [][]float64{res.RankSQAK, res.RankIQP, res.Construction} {
		for _, v := range s {
			if v < 1 {
				t.Fatalf("interaction cost below 1: %v", v)
			}
		}
	}
}

func TestFig3_7Crossover(t *testing.T) {
	env, intents := movieEnv(t)
	rows, table, err := Fig3_7(env, intents)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no categories")
	}
	if len(table.Rows) != len(rows) {
		t.Fatal("table/rows mismatch")
	}
	// Category 0 (intent within the first page): ranking is faster.
	if rows[0].Category == 0 && rows[0].RankSeconds >= rows[0].ConstructSeconds {
		t.Fatalf("category 0 should favour ranking: %+v", rows[0])
	}
	// For any high category, construction must win (the Figure 3.7
	// crossover).
	for _, r := range rows {
		if r.Category >= 3 && r.ConstructSeconds >= r.RankSeconds {
			t.Fatalf("category %d should favour construction: %+v", r.Category, r)
		}
	}
}

func TestTable3_2Growth(t *testing.T) {
	rows, table, err := Table3_2([]int{5, 20}, []int{10, 20}, 3, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Interpretations <= rows[0].Interpretations {
		t.Fatalf("space should grow with tables: %v vs %v",
			rows[0].Interpretations, rows[1].Interpretations)
	}
	// Steps grow far slower than the space.
	growthSpace := rows[1].Interpretations / rows[0].Interpretations
	growthSteps := rows[1].Steps[20] / rows[0].Steps[20]
	if growthSteps > growthSpace {
		t.Fatalf("steps grew faster than space: %v vs %v", growthSteps, growthSpace)
	}
}

func TestTable3_3Growth(t *testing.T) {
	rows, _, err := Table3_3([]int{2, 4}, []int{20}, 10, 3, 78)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Interpretations <= rows[0].Interpretations {
		t.Fatal("space should grow with keywords")
	}
}

func TestTable3_4GreedyNearOptimal(t *testing.T) {
	rows, table, err := Table3_4([][2]int{{8, 4}, {16, 8}}, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatal("table rows")
	}
	for _, r := range rows {
		if r.GreedyCost < r.BruteCost-1e-9 {
			t.Fatalf("greedy beat brute force: %+v", r)
		}
		if r.RelativeDifferencePct > 10 {
			t.Fatalf("greedy more than 10%% off: %+v", r)
		}
	}
}

func TestCh4Pipeline(t *testing.T) {
	env, intents := movieEnv(t)
	amb, err := PickAmbiguousIntents(env, intents, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(amb) == 0 {
		t.Fatal("no ambiguous intents")
	}

	// Table 4.1 example.
	table41, err := Table4_1(env, amb[0], 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table41.Rows) == 0 {
		t.Fatal("empty Table 4.1")
	}

	// Figure 4.1.
	f41, err := Fig4_1(env, amb, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(f41.AvgPR) == 0 {
		t.Fatal("no PR data")
	}
	// The probability ratio decays: late ranks carry less than rank 2.
	if last := f41.AvgPR[len(f41.AvgPR)-1]; last > f41.AvgPR[0] {
		t.Fatalf("PR should decay: first %v last %v", f41.AvgPR[0], last)
	}

	// Figure 4.2.
	points, _, err := Fig4_2(env, amb, []float64{0, 0.99}, 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no Fig 4.2 points")
	}
	// At alpha=0 ranking dominates (or ties) diversification at k=1.
	for _, p := range points {
		if p.K == 1 && p.Ranking+1e-9 < p.Diversified && p.Alpha == 0 {
			t.Fatalf("diversification cannot beat ranking at k=1, α=0: %+v", p)
		}
	}

	// Figure 4.3: WS-recall of diversification ≥ ranking on average at
	// the largest k.
	f43, _, err := Fig4_3(env, amb, 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f43) == 0 {
		t.Fatal("no Fig 4.3 points")
	}
	last := f43[len(f43)-1]
	if last.Diversified < last.Ranking-0.05 {
		t.Fatalf("diversified WS-recall collapsed: %+v", last)
	}

	// Figure 4.4: relevance decreases (weakly) as λ decreases.
	f44, _, err := Fig4_4(env, amb, []float64{1.0, 0.5, 0.0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(f44) != 3 {
		t.Fatal("λ sweep size")
	}
	if f44[2].Relevance > f44[0].Relevance+1e-9 {
		t.Fatalf("relevance should not grow as λ falls: %+v", f44)
	}
	if f44[2].Novelty < f44[0].Novelty-1e-9 {
		t.Fatalf("novelty should not fall as λ falls: %+v", f44)
	}

	// Early-stop ablation yields identical output.
	if _, err := AblationDivqEarlyStop(env, amb, 5, 0.1); err != nil {
		t.Fatal(err)
	}
}

func TestCh5Pipeline(t *testing.T) {
	env, err := NewFreebaseEnv(6, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	intents := FreebaseWorkload(env, 25, 6)
	if len(intents) != 25 {
		t.Fatalf("intents = %d", len(intents))
	}

	// Table 5.2 covers every complexity class present.
	rows52, t52 := Table5_2(env, intents)
	if len(rows52) == 0 || len(t52.Rows) == 0 {
		t.Fatal("empty Table 5.2")
	}

	// Table 5.3 ontology sweep.
	rows53, _ := Table5_3(env, []datagen.YAGOConfig{
		{BackboneDepth: 2, BackboneBranch: 2, Seed: 9},
		{BackboneDepth: 4, BackboneBranch: 3, Seed: 9},
	})
	if len(rows53) != 2 || rows53[1].Classes <= rows53[0].Classes {
		t.Fatalf("ontology sweep wrong: %+v", rows53)
	}

	// Figures 5.4/5.5.
	rows54, rows55, t54, t55, err := Fig5_4_5(env, intents)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows54) == 0 || len(rows55) == 0 || len(t54.Rows) == 0 || len(t55.Rows) == 0 {
		t.Fatal("empty Fig 5.4/5.5")
	}
	// FreeQ must not lose to IQP on average in any complexity class of
	// this wide flat schema.
	for _, r := range rows54 {
		if r.FreeQSteps > r.IQPSteps+1e-9 {
			t.Fatalf("FreeQ lost to IQP at complexity %d: %+v", r.Complexity, r)
		}
	}

	// Table 5.1 transcript for the first resolvable single-keyword intent.
	for _, in := range intents {
		if in.Complexity != 1 {
			continue
		}
		tr, err := Table5_1(env, in)
		if err == nil {
			if len(tr.Rows) == 0 {
				t.Fatal("empty transcript")
			}
			break
		}
	}
}

func TestFig5_2Shape(t *testing.T) {
	rows, table, err := Fig5_2([]int{3, 10}, 10, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(table.Rows) != 2 {
		t.Fatal("rows")
	}
	// Ontology QCOs must stay more efficient than attribute options on
	// the larger schema.
	big := rows[1]
	if big.OntologyEfficiency <= big.AttributeEfficiency {
		t.Fatalf("ontology QCOs not more efficient on big schema: %+v", big)
	}
	if big.OntologySteps >= big.AttributeSteps {
		t.Fatalf("ontology QCOs not cheaper on big schema: %+v", big)
	}
}

func TestCh6Pipeline(t *testing.T) {
	env, err := NewFreebaseEnv(5, 8, 21)
	if err != nil {
		t.Fatal(err)
	}
	t61 := Table6_1(env)
	if len(t61.Rows) == 0 {
		t.Fatal("empty Table 6.1")
	}
	t62 := Table6_2(env)
	if len(t62.Rows) == 0 {
		t.Fatal("empty Table 6.2")
	}
	overlaps, t62f := Fig6_2(env)
	if len(overlaps) != 5 || len(t62f.Rows) != 5 {
		t.Fatalf("domains = %d", len(overlaps))
	}
	matches, _ := Fig6_3(env, 0.5, 5)
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	st, t63 := Table6_3(env, matches)
	if st.MatchedTables != len(matches) || len(t63.Rows) == 0 {
		t.Fatal("Table 6.3 inconsistent")
	}
	quality, t64 := Fig6_4(env, []float64{0.1, 0.5, 0.9})
	if len(quality) != 3 || len(t64.Rows) != 3 {
		t.Fatal("Fig 6.4 rows")
	}
	// Shape: matches fall with threshold; precision at 0.5 is high.
	if quality[2].Matched > quality[0].Matched {
		t.Fatal("matches should fall with threshold")
	}
	if quality[1].Precision < 0.8 {
		t.Fatalf("precision too low: %+v", quality[1])
	}
}

func TestAblations(t *testing.T) {
	env, intents := movieEnv(t)
	tp, err := AblationOptionPolicy(env, intents[:10])
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Rows) != 2 {
		t.Fatal("policy rows")
	}
	ts, err := AblationSmoothing(env, intents[:10], []float64{0.5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Rows) != 3 {
		t.Fatal("smoothing rows")
	}
	tt, err := AblationThreshold(env, intents[:10], []int{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(tt.Rows) != 3 {
		t.Fatal("threshold rows")
	}
}

func TestAblationOntologyFanout(t *testing.T) {
	env, err := NewFreebaseEnv(4, 8, 31)
	if err != nil {
		t.Fatal(err)
	}
	intents := FreebaseWorkload(env, 10, 32)
	table, err := AblationOntologyFanout(env, intents, []int{2, 4}, 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatal("fanout rows")
	}
}

func TestIntentRelevance(t *testing.T) {
	env, intents := movieEnv(t)
	for _, in := range intents[:5] {
		c := env.Candidates(in.Keywords)
		space := env.Space(c, 0)
		intended, ok := env.ResolveIntent(in, space)
		if !ok {
			continue
		}
		rel := IntentRelevance(in)
		if got := rel(intended); got != 1 {
			t.Fatalf("intended relevance = %v, want 1", got)
		}
		for _, q := range space {
			r := rel(q)
			if r < 0 || r > 1 {
				t.Fatalf("relevance out of range: %v", r)
			}
		}
		return
	}
	t.Skip("no resolvable intent")
}

func TestAttrOf(t *testing.T) {
	a, err := AttrOf("movie.title")
	if err != nil || a.Table != "movie" || a.Column != "title" {
		t.Fatalf("AttrOf = %v, %v", a, err)
	}
	if _, err := AttrOf("nodot"); err == nil {
		t.Fatal("bad attr accepted")
	}
}

func TestTable3_1(t *testing.T) {
	env, intents := movieEnv(t)
	rows, table, err := Table3_1(env, intents, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(table.Rows) != len(rows) {
		t.Fatal("empty Table 3.1")
	}
	for i, r := range rows {
		if r.C1 < 1 || r.C2 < 0 || r.SpaceSize < r.C1 {
			t.Fatalf("implausible row: %+v", r)
		}
		if i > 0 && r.C1 > rows[i-1].C1 {
			t.Fatal("rows not sorted by difficulty")
		}
	}
}

func TestAblationDataVsSchema(t *testing.T) {
	env, intents := movieEnv(t)
	table, err := AblationDataVsSchema(env, intents[:8])
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
}
