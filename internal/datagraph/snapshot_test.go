package datagraph

import (
	"bytes"
	"testing"

	"repro/internal/durable"
	"repro/internal/relstore"
)

// snapshotGraph builds the apply-test graph after churn, so adjacency
// holds RowID gaps and parallel-edge duplicates where the fixture has
// them.
func snapshotGraph(t *testing.T) (*Graph, *relstore.Database) {
	t.Helper()
	db := graphTestDB(t)
	g := Build(db)
	ndb, changes, err := db.Apply([]relstore.Mutation{
		{Op: relstore.OpDelete, Table: "actor", Key: "a1"},
		{Op: relstore.OpInsert, Table: "actor", Values: []string{"a7", "Returning Star"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g.Apply(ndb, changes), ndb
}

func TestGraphSnapshotRoundTrip(t *testing.T) {
	g, db := snapshotGraph(t)
	var enc durable.Enc
	g.EncodeSnapshot(&enc)
	got, err := DecodeSnapshot(durable.NewDec(enc.Bytes()), db)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, got, g)
	if got.NumEdges() != g.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", got.NumEdges(), g.NumEdges())
	}
}

func TestGraphSnapshotByteStable(t *testing.T) {
	g, db := snapshotGraph(t)
	var e1, e2 durable.Enc
	g.EncodeSnapshot(&e1)
	g.EncodeSnapshot(&e2)
	if !bytes.Equal(e1.Bytes(), e2.Bytes()) {
		t.Fatal("same graph encoded to different bytes")
	}
	decoded, err := DecodeSnapshot(durable.NewDec(e1.Bytes()), db)
	if err != nil {
		t.Fatal(err)
	}
	var e3 durable.Enc
	decoded.EncodeSnapshot(&e3)
	if !bytes.Equal(e1.Bytes(), e3.Bytes()) {
		t.Fatal("decode→encode did not reproduce the bytes")
	}
}

func TestGraphSnapshotRejectsCorruption(t *testing.T) {
	g, db := snapshotGraph(t)
	var enc durable.Enc
	g.EncodeSnapshot(&enc)
	raw := enc.Bytes()
	for _, cut := range []int{0, 2, len(raw) / 2} {
		if _, err := DecodeSnapshot(durable.NewDec(raw[:cut]), db); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
