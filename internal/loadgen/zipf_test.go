package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	keysearch "repro"
	"repro/httpapi"
)

// TestZipfWorkloadShape checks the repeated-query mode: the op stream
// keeps cfg.Ops length, draws from at most HotSet distinct queries with
// the hot head dominating, and stays deterministic.
func TestZipfWorkloadShape(t *testing.T) {
	cfg := DatasetConfig{Kind: KindMovies, TargetRows: 2000, Seed: 11}
	db, err := BuildDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := WorkloadConfig{Ops: 400, Seed: 3, ZipfS: 1.3, HotSet: 16}
	ops, err := BuildWorkload(db, cfg.Kind, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 400 {
		t.Fatalf("ops = %d, want 400", len(ops))
	}
	freq := map[string]int{}
	for _, op := range ops {
		freq[op.Query]++
	}
	if len(freq) > 16 {
		t.Fatalf("Zipf mode produced %d distinct queries, want <= HotSet=16", len(freq))
	}
	top := 0
	for _, n := range freq {
		if n > top {
			top = n
		}
	}
	// With s=1.3 over 16 ranks the head rank must clearly dominate a
	// uniform draw (400/16 = 25).
	if top < 50 {
		t.Fatalf("hot head drew only %d of 400 ops — not a skewed stream (%d distinct)", top, len(freq))
	}
	ops2, err := BuildWorkload(db, cfg.Kind, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ops {
		if ops[i].Kind != ops2[i].Kind || !bytes.Equal(ops[i].Body, ops2[i].Body) {
			t.Fatalf("Zipf workload not deterministic at op %d", i)
		}
	}
}

// TestAnswerCacheUnderZipfLoad is the acceptance test for the answer
// cache under a realistic serving workload: a Zipf-skewed repeated
// query stream (with the default trickle of mutations) against the HTTP
// stack, with a deliberately small cache budget. The cache must serve
// real hits, survive the mutation churn, and never let its resident
// high-water cross the byte budget.
func TestAnswerCacheUnderZipfLoad(t *testing.T) {
	const budget = 128 << 10
	cfg := DatasetConfig{Kind: KindMovies, TargetRows: 4000, Seed: 42}
	db, err := BuildDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := BuildEngine(cfg, keysearch.WithAnswerCache(budget))
	if err != nil {
		t.Fatal(err)
	}
	if !eng.AnswerCacheEnabled() {
		t.Fatal("answer cache not enabled")
	}
	ops, err := BuildWorkload(db, cfg.Kind, WorkloadConfig{
		Ops: 256, Seed: 7, ZipfS: 1.3, HotSet: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	mutated := false
	for _, op := range ops {
		if op.Kind == OpMutate {
			mutated = true
		}
	}
	if !mutated {
		t.Fatal("workload carries no mutations — churn leg is vacuous")
	}

	ts := httptest.NewServer(httpapi.New(eng))
	defer ts.Close()
	res, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		Ops:      ops,
		Workers:  4,
		Duration: 700 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("run produced %d errors", res.Errors)
	}

	stats, ok := eng.AnswerCacheStats()
	if !ok {
		t.Fatal("stats unavailable")
	}
	if stats.Hits == 0 {
		t.Fatalf("Zipf repeated stream never hit the cache: %+v", stats)
	}
	if stats.BudgetBytes != budget {
		t.Fatalf("budget = %d, want %d", stats.BudgetBytes, budget)
	}
	if stats.HighWaterBytes > stats.BudgetBytes {
		t.Fatalf("cache high-water %d exceeded budget %d: %+v",
			stats.HighWaterBytes, stats.BudgetBytes, stats)
	}
	if eng.Epoch() == 0 {
		t.Fatal("mutate ops did not commit any batch")
	}

	// /healthz must surface the cache block with sane values: the budget
	// in the nested limits object, the live counters in answer_cache.
	var health struct {
		Limits struct {
			AnswerCacheBudgetBytes int64 `json:"answer_cache_budget_bytes"`
		} `json:"limits"`
		AnswerCache *struct {
			HighWaterBytes int64 `json:"high_water_bytes"`
			Hits           int64 `json:"hits"`
		} `json:"answer_cache"`
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &health); err != nil {
		t.Fatal(err)
	}
	if health.AnswerCache == nil {
		t.Fatalf("/healthz missing answer_cache block: %s", raw)
	}
	if health.Limits.AnswerCacheBudgetBytes != budget || health.AnswerCache.Hits == 0 {
		t.Fatalf("/healthz answer cache implausible: limits=%+v cache=%+v", health.Limits, health.AnswerCache)
	}
	if health.AnswerCache.HighWaterBytes > health.Limits.AnswerCacheBudgetBytes {
		t.Fatalf("/healthz reports high-water over budget: %+v", health.AnswerCache)
	}
}
