package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/relstore"
)

// Intent is one workload query with its ground truth: the keywords the
// simulated user types and, per keyword, the attribute ("table.column")
// the user intends it to match. Intents substitute for the manually
// assessed query-log extractions of Sections 3.8.1 and 4.6.1.
type Intent struct {
	Keywords []string
	// Attrs[i] names the intended attribute of Keywords[i].
	Attrs []string
	// MultiConcept marks queries combining two different entity concepts
	// (the "mc" query class of Section 4.6.1).
	MultiConcept bool
}

// String renders the intent compactly.
func (in Intent) String() string {
	return fmt.Sprintf("%v -> %v", in.Keywords, in.Attrs)
}

// WorkloadConfig tunes workload sampling.
type WorkloadConfig struct {
	// Queries is the number of intents to generate.
	Queries int
	// MultiConceptFraction is the share of multi-concept queries
	// (0.5 reproduces the sc/mc split of Section 4.6.1).
	MultiConceptFraction float64
	Seed                 int64
}

func (c *WorkloadConfig) defaults() {
	if c.Queries <= 0 {
		c.Queries = 50
	}
	if c.MultiConceptFraction < 0 {
		c.MultiConceptFraction = 0.5
	}
}

// tokenOf returns a random informative token (≥3 chars, not a stop word)
// of a random row's value of the attribute, or "".
func tokenOf(rng *rand.Rand, db *relstore.Database, table, column string) string {
	t := db.Table(table)
	if t == nil || t.Len() == 0 {
		return ""
	}
	for attempt := 0; attempt < 20; attempt++ {
		row, ok := t.Row(rng.Intn(t.Len()))
		if !ok {
			continue
		}
		ci := t.Schema.ColumnIndex(column)
		if ci < 0 {
			return ""
		}
		toks := relstore.Tokenize(row.Values[ci])
		if len(toks) == 0 {
			continue
		}
		tok := toks[rng.Intn(len(toks))]
		if len(tok) >= 3 && tok != "the" {
			return tok
		}
	}
	return ""
}

// MovieWorkload samples intents against an IMDB-style database:
// single-concept queries are person names or movie titles; multi-concept
// queries combine an actor/director name token with a movie title token
// and optionally a year — the movie-actor pattern that the thesis's
// pruned query log yielded (Section 3.8.1).
func MovieWorkload(db *relstore.Database, cfg WorkloadConfig) []Intent {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Intent
	for len(out) < cfg.Queries {
		multi := rng.Float64() < cfg.MultiConceptFraction
		var in Intent
		if !multi {
			switch rng.Intn(3) {
			case 0: // full actor name (two keywords, one attribute)
				tok1 := tokenOf(rng, db, "actor", "name")
				tok2 := tokenOf(rng, db, "actor", "name")
				if tok1 == "" || tok2 == "" || tok1 == tok2 {
					continue
				}
				in = Intent{Keywords: []string{tok1, tok2},
					Attrs: []string{"actor.name", "actor.name"}}
			case 1: // movie title word
				tok := tokenOf(rng, db, "movie", "title")
				if tok == "" {
					continue
				}
				in = Intent{Keywords: []string{tok}, Attrs: []string{"movie.title"}}
			default: // director surname
				tok := tokenOf(rng, db, "director", "name")
				if tok == "" {
					continue
				}
				in = Intent{Keywords: []string{tok}, Attrs: []string{"director.name"}}
			}
		} else {
			person := "actor"
			if rng.Float64() < 0.3 {
				person = "director"
			}
			ptok := tokenOf(rng, db, person, "name")
			mtok := tokenOf(rng, db, "movie", "title")
			if ptok == "" || mtok == "" || ptok == mtok {
				continue
			}
			in = Intent{
				Keywords:     []string{ptok, mtok},
				Attrs:        []string{person + ".name", "movie.title"},
				MultiConcept: true,
			}
			seen := map[string]bool{ptok: true, mtok: true}
			add := func(tok, attr string) {
				if tok != "" && !seen[tok] {
					seen[tok] = true
					in.Keywords = append(in.Keywords, tok)
					in.Attrs = append(in.Attrs, attr)
				}
			}
			// Longer queries (the thesis workload averages four terms):
			// a second person-name token, a role token, and/or a year.
			if rng.Float64() < 0.6 {
				add(tokenOf(rng, db, person, "name"), person+".name")
			}
			if rng.Float64() < 0.4 && db.Table("acts") != nil {
				add(tokenOf(rng, db, "acts", "role"), "acts.role")
			}
			if rng.Float64() < 0.4 {
				add(tokenOf(rng, db, "movie", "year"), "movie.year")
			}
		}
		out = append(out, in)
	}
	return out
}

// MusicWorkload samples intents against a Lyrics-style database: artist
// names, song titles, and the artist+song multi-concept combination that
// requires the full five-table chain join (the "mariah carey emotions"
// pattern of Section 3.8.3).
func MusicWorkload(db *relstore.Database, cfg WorkloadConfig) []Intent {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Intent
	for len(out) < cfg.Queries {
		multi := rng.Float64() < cfg.MultiConceptFraction
		var in Intent
		if !multi {
			if rng.Intn(2) == 0 {
				tok1 := tokenOf(rng, db, "artist", "name")
				tok2 := tokenOf(rng, db, "artist", "name")
				if tok1 == "" || tok2 == "" || tok1 == tok2 {
					continue
				}
				in = Intent{Keywords: []string{tok1, tok2},
					Attrs: []string{"artist.name", "artist.name"}}
			} else {
				tok := tokenOf(rng, db, "song", "title")
				if tok == "" {
					continue
				}
				in = Intent{Keywords: []string{tok}, Attrs: []string{"song.title"}}
			}
		} else {
			atok := tokenOf(rng, db, "artist", "name")
			stok := tokenOf(rng, db, "song", "title")
			if atok == "" || stok == "" || atok == stok {
				continue
			}
			in = Intent{
				Keywords:     []string{atok, stok},
				Attrs:        []string{"artist.name", "song.title"},
				MultiConcept: true,
			}
		}
		out = append(out, in)
	}
	return out
}

// TemplateLog simulates a query log over a template catalogue by
// recording usage counts with the given skew: the Lyrics log of
// Section 3.8.2 is dominated by one five-table template (frequency 0.85),
// while the IMDB log is near-uniform. skew is the fraction of the log
// going to the single most-used template; the rest is spread uniformly.
func TemplateLog(numTemplates, totalQueries int, skew float64, seed int64) map[int]int {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[int]int)
	if numTemplates == 0 || totalQueries == 0 {
		return out
	}
	head := int(float64(totalQueries) * skew)
	favourite := rng.Intn(numTemplates)
	out[favourite] = head
	for i := 0; i < totalQueries-head; i++ {
		out[rng.Intn(numTemplates)]++
	}
	return out
}
