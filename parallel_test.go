package keysearch

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/topk"
)

// parallelLevels are the worker counts the determinism suite compares;
// 1 is the sequential reference.
var parallelLevels = []int{1, 2, 8}

// determinismRequests is the request mix replayed at every parallelism
// level. Row previews are included so the comparison covers plan
// execution, not just ranking.
func determinismRequests(eng *Engine) (searches []SearchRequest, rows []RowsRequest) {
	for _, q := range goldenQueries(eng) {
		searches = append(searches, SearchRequest{Query: q, K: 10, RowLimit: 2})
		rows = append(rows, RowsRequest{Query: q, K: 6})
	}
	return searches, rows
}

// TestParallelDeterminism asserts the tentpole guarantee: the same
// Request produces a byte-identical Response JSON at parallelism 1, 2,
// and 8, for both ranked-interpretation search and global top-k rows.
// Run under -race (as in CI) this doubles as the race test for every
// parallel stage.
func TestParallelDeterminism(t *testing.T) {
	ctx := context.Background()
	type capture struct {
		search [][]byte
		rows   [][]byte
	}
	captures := make(map[int]capture)
	for _, p := range parallelLevels {
		eng, err := DemoMoviesWith(11, WithParallelism(p))
		if err != nil {
			t.Fatal(err)
		}
		if got := eng.Parallelism(); got != p {
			t.Fatalf("Parallelism() = %d, want %d", got, p)
		}
		searches, rowReqs := determinismRequests(eng)
		var c capture
		for _, req := range searches {
			resp, err := eng.Search(ctx, req)
			if err != nil {
				t.Fatalf("p=%d Search(%q): %v", p, req.Query, err)
			}
			b, err := json.Marshal(resp)
			if err != nil {
				t.Fatal(err)
			}
			c.search = append(c.search, b)
		}
		for _, req := range rowReqs {
			resp, err := eng.SearchRows(ctx, req)
			if err != nil {
				t.Fatalf("p=%d SearchRows(%q): %v", p, req.Query, err)
			}
			b, err := json.Marshal(resp)
			if err != nil {
				t.Fatal(err)
			}
			c.rows = append(c.rows, b)
		}
		captures[p] = c
	}
	ref := captures[1]
	for _, p := range parallelLevels[1:] {
		c := captures[p]
		for i := range ref.search {
			if string(ref.search[i]) != string(c.search[i]) {
				t.Errorf("Search response %d differs between parallelism 1 and %d:\nseq: %s\npar: %s",
					i, p, ref.search[i], c.search[i])
			}
		}
		for i := range ref.rows {
			if string(ref.rows[i]) != string(c.rows[i]) {
				t.Errorf("Rows response %d differs between parallelism 1 and %d:\nseq: %s\npar: %s",
					i, p, ref.rows[i], c.rows[i])
			}
		}
	}
}

// TestScoreCacheTransparency asserts the memoised score cache never
// changes a response: cache on vs cache off produce byte-identical JSON,
// and repeated requests against one (warm) engine stay identical too.
func TestScoreCacheTransparency(t *testing.T) {
	ctx := context.Background()
	on, err := DemoMoviesWith(11, WithScoreCache(true))
	if err != nil {
		t.Fatal(err)
	}
	off, err := DemoMoviesWith(11, WithScoreCache(false))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range goldenQueries(on) {
		req := SearchRequest{Query: q, K: 10}
		first, err := on.Search(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := on.Search(ctx, req) // second hit serves from the cache
		if err != nil {
			t.Fatal(err)
		}
		cold, err := off.Search(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		fb, _ := json.Marshal(first)
		wb, _ := json.Marshal(warm)
		cb, _ := json.Marshal(cold)
		if string(fb) != string(wb) {
			t.Errorf("warm cache changed response for %q", q)
		}
		if string(fb) != string(cb) {
			t.Errorf("cache on/off responses differ for %q:\non:  %s\noff: %s", q, fb, cb)
		}
	}
}

// TestExecutionCacheTransparency asserts the per-request selection cache
// of the plan executor never changes a response: cache on vs cache off
// produce byte-identical JSON across the whole request mix — ranked
// search with row previews (shared preview cache), global top-k rows
// (cache shared across parallel plan waves), and diversification
// (cached non-empty probes).
func TestExecutionCacheTransparency(t *testing.T) {
	ctx := context.Background()
	on, err := DemoMoviesWith(11, WithExecutionCache(true), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	off, err := DemoMoviesWith(11, WithExecutionCache(false), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if !on.ExecutionCacheEnabled() || off.ExecutionCacheEnabled() {
		t.Fatal("WithExecutionCache not reflected by ExecutionCacheEnabled")
	}
	compare := func(q, what string, a, b any, erra, errb error) {
		t.Helper()
		if erra != nil || errb != nil {
			t.Fatalf("%s(%q): on err=%v off err=%v", what, q, erra, errb)
		}
		ab, _ := json.Marshal(a)
		bb, _ := json.Marshal(b)
		if string(ab) != string(bb) {
			t.Errorf("%s cache on/off responses differ for %q:\non:  %s\noff: %s", what, q, ab, bb)
		}
	}
	for _, q := range goldenQueries(on) {
		sOn, err1 := on.Search(ctx, SearchRequest{Query: q, K: 10, RowLimit: 2})
		sOff, err2 := off.Search(ctx, SearchRequest{Query: q, K: 10, RowLimit: 2})
		compare(q, "Search", sOn, sOff, err1, err2)
		rOn, err1 := on.SearchRows(ctx, RowsRequest{Query: q, K: 6})
		rOff, err2 := off.SearchRows(ctx, RowsRequest{Query: q, K: 6})
		compare(q, "SearchRows", rOn, rOff, err1, err2)
		dOn, err1 := on.Diversify(ctx, DiversifyRequest{Query: q, K: 5, Lambda: 0.3, RowLimit: 2})
		dOff, err2 := off.Diversify(ctx, DiversifyRequest{Query: q, K: 5, Lambda: 0.3, RowLimit: 2})
		compare(q, "Diversify", dOn, dOff, err1, err2)
	}
}

// TestStageCancellation proves a cancelled context returns promptly from
// each parallel stage in isolation — candidate generation, interpretation
// enumeration, ranking, and top-k execution — not just from the pipeline
// entry points.
func TestStageCancellation(t *testing.T) {
	eng, err := DemoMoviesWith(11, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	live := context.Background()
	cancelled, cancel := context.WithCancel(live)
	cancel()

	toks := eng.SampleQueries(3)
	if len(toks) < 3 {
		t.Fatal("not enough sample tokens")
	}
	q := toks[0] + " " + toks[1] + " " + toks[2]

	// Stage inputs, prepared under a live context.
	cands, _, err := eng.candidatesFor(live, eng.current(), q)
	if err != nil {
		t.Fatal(err)
	}
	space, err := query.GenerateCompleteContext(live, cands, eng.current().cat, query.GenerateConfig{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(space) == 0 {
		t.Fatal("empty interpretation space")
	}
	ranked, err := eng.current().model.RankContext(live, space)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("generate", func(t *testing.T) {
		if _, err := query.GenerateCompleteContext(cancelled, cands, eng.current().cat, query.GenerateConfig{Parallelism: 4}); !errors.Is(err, context.Canceled) {
			t.Fatalf("GenerateCompleteContext error = %v, want context.Canceled", err)
		}
	})
	t.Run("rank", func(t *testing.T) {
		if _, err := eng.current().model.RankContext(cancelled, space); !errors.Is(err, context.Canceled) {
			t.Fatalf("RankContext error = %v, want context.Canceled", err)
		}
	})
	t.Run("topk", func(t *testing.T) {
		_, _, err := topk.TopKContext(cancelled, eng.current().db, ranked, &topk.TFScorer{IX: eng.current().ix}, topk.Options{K: 5, Parallelism: 4})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("TopKContext error = %v, want context.Canceled", err)
		}
	})
	t.Run("rank-sequential-model", func(t *testing.T) {
		m := prob.New(eng.current().ix, eng.current().cat, prob.Config{})
		if _, err := m.RankContext(cancelled, space); !errors.Is(err, context.Canceled) {
			t.Fatalf("sequential RankContext error = %v, want context.Canceled", err)
		}
	})
}

// TestMidPipelineCancellation cancels a request while the parallel
// pipeline is (potentially) mid-flight and asserts it returns quickly
// with either a complete response or context.Canceled — never a hang and
// never a mangled error.
func TestMidPipelineCancellation(t *testing.T) {
	eng, err := DemoMoviesWith(11, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	toks := eng.SampleQueries(3)
	q := toks[0] + " " + toks[1]
	for _, delay := range []time.Duration{0, 50 * time.Microsecond, 500 * time.Microsecond} {
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(delay, cancel)
		done := make(chan error, 1)
		go func() {
			_, err := eng.Search(ctx, SearchRequest{Query: q, K: 10, RowLimit: 2})
			done <- err
		}()
		select {
		case err := <-done:
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("delay %v: error = %v, want nil or context.Canceled", delay, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("delay %v: Search did not return after cancellation", delay)
		}
		timer.Stop()
		cancel()
	}
}
