package keysearch

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/durable"
)

// TestRecoveryTornWALDifferential is the crash-recovery differential of
// the durability subsystem: the write-ahead log is killed at *every*
// byte offset of the final batch's record, and each recovered engine
// must answer byte-identically to an engine freshly built over the
// surviving rows — with caches on and off.
//
// A cut strictly inside the final record models a crash mid-append: the
// batch was never acknowledged, so recovery must surface exactly the
// batches before it. The cut at the full length models a crash right
// after the acknowledged append but before any checkpoint: the batch
// must survive.
func TestRecoveryTornWALDifferential(t *testing.T) {
	base := t.TempDir()
	srcDir := filepath.Join(base, "src")
	eng := durableEngine(t, srcDir)
	batches := [][]Mutation{
		{{Op: OpInsert, Table: "actor", Values: []string{"a4", "Meg Ryan"}}},
		{{Op: OpDelete, Table: "actor", Key: "a2"},
			{Op: OpInsert, Table: "movie", Values: []string{"m3", "Sleepless Sky", "1993"}}},
		{{Op: OpUpdate, Table: "movie", Key: "m1", Values: []string{"m1", "The Terminal Returns", "2005"}},
			{Op: OpInsert, Table: "actor", Values: []string{"a5", "Catherine Zeta Jones"}},
			{Op: OpDelete, Table: "actor", Key: "a5"}},
	}
	for _, b := range batches {
		if _, err := eng.Apply(bg, b); err != nil {
			t.Fatal(err)
		}
	}
	snapRaw, err := os.ReadFile(filepath.Join(srcDir, snapshotFileName))
	if err != nil {
		t.Fatal(err)
	}
	walRaw, err := os.ReadFile(filepath.Join(srcDir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	// Locate the final record's start by framing the first two batches.
	var prefix []byte
	for i, b := range batches[:2] {
		prefix = durable.AppendRecord(prefix, uint64(i+1), encodeMutations(b))
	}
	finalStart := len(prefix)
	if finalStart <= 0 || finalStart >= len(walRaw) {
		t.Fatalf("bad frame arithmetic: final record at %d of %d", finalStart, len(walRaw))
	}

	cacheVariants := map[string][]Option{
		"caches-on":  nil,
		"caches-off": {WithExecutionCache(false), WithScoreCache(false)},
	}
	for cut := finalStart; cut <= len(walRaw); cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, snapshotFileName), snapRaw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walFileName), walRaw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantEpoch := uint64(2)
		if cut == len(walRaw) {
			wantEpoch = 3 // the full final record survived the crash
		}
		for variant, opts := range cacheVariants {
			got, err := Open(dir, opts...)
			if err != nil {
				t.Fatalf("cut %d (%s): %v", cut, variant, err)
			}
			if got.Epoch() != wantEpoch {
				t.Fatalf("cut %d (%s): epoch = %d, want %d", cut, variant, got.Epoch(), wantEpoch)
			}
			compareEngines(t, got, rebuiltEngine(t, got, opts...), durQueries)
		}
	}
}

// TestRecoveryWALGapDetected: a WAL whose first surviving record skips
// an epoch is data loss, not a torn tail — Open must refuse it.
func TestRecoveryWALGapDetected(t *testing.T) {
	dir := t.TempDir()
	eng := durableEngine(t, dir)
	for i := 0; i < 2; i++ {
		if _, err := eng.Apply(bg, []Mutation{
			{Op: OpInsert, Table: "actor", Values: []string{fmt.Sprintf("g%d", i), "Gap Person"}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	walPath := filepath.Join(dir, walFileName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := durable.ScanWAL(raw)
	if len(recs) != 2 {
		t.Fatalf("fixture has %d records", len(recs))
	}
	// Drop record 1 but keep record 2: epoch 2 right after snapshot 0.
	tail := durable.AppendRecord(nil, recs[1].Epoch, recs[1].Body)
	if err := os.WriteFile(walPath, tail, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("WAL epoch gap accepted")
	}
}

// TestRecoveryStaleWALSkipped: records at or below the snapshot's epoch
// (a crash between checkpoint rename and WAL truncation) are skipped,
// not replayed twice.
func TestRecoveryStaleWALSkipped(t *testing.T) {
	dir := t.TempDir()
	eng := durableEngine(t, dir)
	if _, err := eng.Apply(bg, []Mutation{
		{Op: OpInsert, Table: "actor", Values: []string{"st1", "Stale Person"}},
	}); err != nil {
		t.Fatal(err)
	}
	walRaw, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Checkpoint(bg); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn checkpoint: restore the pre-truncation WAL next
	// to the post-checkpoint snapshot.
	if err := os.WriteFile(filepath.Join(dir, walFileName), walRaw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Open(dir, WithMutations())
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if got.Epoch() != 1 || got.PendingWALBatches() != 0 {
		t.Fatalf("epoch=%d pending=%d, want 1/0 (stale record replayed?)", got.Epoch(), got.PendingWALBatches())
	}
	// The skipped record is not pending work, so the first checkpoint
	// must not claim to have dropped it.
	stats, err := got.Checkpoint(bg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WALBatchesDropped != 0 {
		t.Fatalf("checkpoint dropped %d batches, want 0 (stale record counted as pending)", stats.WALBatchesDropped)
	}
	// Exactly one Stale Person row: the record was not applied twice.
	resp, err := got.Search(bg, SearchRequest{Query: "stale", K: 5, RowLimit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 || len(resp.Results[0].Preview) != 1 {
		t.Fatalf("stale-record replay check: %+v", resp.Results)
	}
	compareEngines(t, got, rebuiltEngine(t, got, WithMutations()), durQueries[:2])
}

// TestRecoveryPolicyInterval: a short-interval policy on a recovered
// engine folds the replayed tail into the snapshot without any explicit
// call.
func TestRecoveryPolicyInterval(t *testing.T) {
	dir := t.TempDir()
	eng := durableEngine(t, dir)
	if _, err := eng.Apply(bg, []Mutation{
		{Op: OpInsert, Table: "actor", Values: []string{"iv1", "Interval Person"}},
	}); err != nil {
		t.Fatal(err)
	}
	got, err := Open(dir, WithMutations(), WithCheckpointPolicy(20*time.Millisecond, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	deadline := time.Now().Add(5 * time.Second)
	for got.PendingWALBatches() != 0 || got.LastCheckpointEpoch() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("interval policy never checkpointed (pending=%d lastCkpt=%d)",
				got.PendingWALBatches(), got.LastCheckpointEpoch())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
