package relstore

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// mutTestDB builds a small person/city/lives database with built posting
// lists and equality indexes (Prepare), the steady state Apply patches.
func mutTestDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase("mut")
	mustCreate := func(s *TableSchema) *Table {
		tb, err := db.CreateTable(s)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	person := mustCreate(&TableSchema{
		Name:       "person",
		Columns:    []Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	city := mustCreate(&TableSchema{
		Name:       "city",
		Columns:    []Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	mustCreate(&TableSchema{
		Name:       "lives",
		Columns:    []Column{{Name: "id"}, {Name: "pid"}, {Name: "cid"}, {Name: "note", Indexed: true}},
		PrimaryKey: "id",
		ForeignKeys: []ForeignKey{
			{Column: "pid", RefTable: "person", RefColumn: "id"},
			{Column: "cid", RefTable: "city", RefColumn: "id"},
		},
	})
	for _, r := range [][]string{
		{"p1", "alice rivers"}, {"p2", "bob stone stone"}, {"p3", "carol rivers"},
	} {
		if _, err := person.Insert(r...); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range [][]string{{"c1", "london"}, {"c2", "paris"}} {
		if _, err := city.Insert(r...); err != nil {
			t.Fatal(err)
		}
	}
	lives := db.Table("lives")
	for _, r := range [][]string{
		{"l1", "p1", "c1", "moved 2001"}, {"l2", "p2", "c2", "born 1999"}, {"l3", "p3", "c1", "moved 1999"},
	} {
		if _, err := lives.Insert(r...); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.ValidateRefs(); err != nil {
		t.Fatal(err)
	}
	db.Prepare()
	return db
}

// assertSelectionsAgree cross-checks the incrementally maintained posting
// lists against the scan reference on every indexed column for a bag of
// probe keywords.
func assertSelectionsAgree(t *testing.T, db *Database, probes [][]string) {
	t.Helper()
	for _, tb := range db.Tables() {
		for _, col := range tb.Schema.TextColumns() {
			for _, bag := range probes {
				got := SortedCopy(tb.SelectContains(col, bag))
				want := tb.SelectContainsScan(col, bag)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s.%s contains %v: postings %v, scan %v", tb.Schema.Name, col, bag, got, want)
				}
			}
		}
	}
}

// assertIndexesAgree cross-checks every built equality index against a
// live-row scan.
func assertIndexesAgree(t *testing.T, db *Database) {
	t.Helper()
	for _, tb := range db.Tables() {
		for ci, col := range tb.Schema.Columns {
			want := make(map[string][]int)
			for _, r := range tb.Rows() {
				if !tb.Live(r.RowID) {
					continue
				}
				want[r.Values[ci]] = append(want[r.Values[ci]], r.RowID)
			}
			for v, ids := range want {
				got := tb.LookupEqual(col.Name, v)
				if !reflect.DeepEqual(SortedCopy(got), ids) {
					t.Errorf("%s.%s = %q: index %v, scan %v", tb.Schema.Name, col.Name, v, got, ids)
				}
			}
		}
	}
}

var mutProbes = [][]string{
	{"rivers"}, {"stone"}, {"stone", "stone"}, {"moved"}, {"1999"},
	{"moved", "1999"}, {"zeta"}, {"london"}, {"dara", "bridge"},
}

func TestApplyInsertUpdateDelete(t *testing.T) {
	db := mutTestDB(t)
	db2, changes, err := db.Apply([]Mutation{
		{Op: OpInsert, Table: "person", Values: []string{"p4", "dara bridge"}},
		{Op: OpUpdate, Table: "person", Key: "p2", Values: []string{"p2", "bob boulder"}},
		{Op: OpDelete, Table: "lives", Key: "l2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 3 {
		t.Fatalf("changes = %d, want 3", len(changes))
	}
	if changes[0].Old != nil || changes[0].New == nil || changes[0].RowID != 3 {
		t.Fatalf("insert change = %+v", changes[0])
	}
	if changes[1].Old == nil || changes[1].New == nil {
		t.Fatalf("update change = %+v", changes[1])
	}
	if changes[2].New != nil || changes[2].Old == nil {
		t.Fatalf("delete change = %+v", changes[2])
	}

	// The original database is untouched (copy-on-write).
	if db.NumRows() != 8 || db.Table("person").NumLive() != 3 {
		t.Fatal("source database changed")
	}
	if got := db.Table("person").SelectContains("name", []string{"stone"}); len(got) != 1 {
		t.Fatalf("source postings changed: %v", got)
	}
	if got := db.Table("lives").LookupEqual("id", "l2"); len(got) != 1 {
		t.Fatalf("source index changed: %v", got)
	}

	// The new database reflects the batch.
	if db2.NumRows() != 8 { // +1 insert, -1 delete
		t.Fatalf("new NumRows = %d, want 8", db2.NumRows())
	}
	if got := db2.Table("person").SelectContains("name", []string{"bridge"}); len(got) != 1 {
		t.Fatalf("inserted row not selectable: %v", got)
	}
	if got := db2.Table("person").SelectContains("name", []string{"stone"}); len(got) != 0 {
		t.Fatalf("old value still selectable after update: %v", got)
	}
	if got := db2.Table("lives").LookupEqual("id", "l2"); len(got) != 0 {
		t.Fatalf("deleted row still in index: %v", got)
	}
	if _, ok := db2.Table("lives").Row(1); ok {
		t.Fatal("deleted row still readable")
	}
	assertSelectionsAgree(t, db2, mutProbes)
	assertIndexesAgree(t, db2)
}

func TestApplyIntraBatchVisibility(t *testing.T) {
	db := mutTestDB(t)
	db2, _, err := db.Apply([]Mutation{
		{Op: OpInsert, Table: "city", Values: []string{"c3", "berlin"}},
		{Op: OpUpdate, Table: "city", Key: "c3", Values: []string{"c3", "hamburg"}},
		{Op: OpInsert, Table: "city", Values: []string{"c4", "ghent"}},
		{Op: OpDelete, Table: "city", Key: "c4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	city := db2.Table("city")
	if city.NumLive() != 3 {
		t.Fatalf("NumLive = %d, want 3", city.NumLive())
	}
	if got := city.SelectContains("name", []string{"hamburg"}); len(got) != 1 {
		t.Fatal("intra-batch update lost")
	}
	for _, gone := range []string{"berlin", "ghent"} {
		if got := city.SelectContains("name", []string{gone}); len(got) != 0 {
			t.Fatalf("%q still selectable", gone)
		}
	}
	assertSelectionsAgree(t, db2, [][]string{{"hamburg"}, {"berlin"}, {"ghent"}, {"london"}})
}

func TestApplyValidationErrors(t *testing.T) {
	db := mutTestDB(t)
	cases := []struct {
		name string
		muts []Mutation
		want string
	}{
		{"empty", nil, "empty mutation batch"},
		{"bad op", []Mutation{{Op: "merge", Table: "city"}}, "unknown op"},
		{"bad table", []Mutation{{Op: OpInsert, Table: "nope", Values: []string{"x"}}}, "unknown table"},
		{"bad arity insert", []Mutation{{Op: OpInsert, Table: "city", Values: []string{"c9"}}}, "expects 2 values"},
		{"bad arity update", []Mutation{{Op: OpUpdate, Table: "city", Key: "c1", Values: []string{"c1"}}}, "expects 2 values"},
		{"missing key", []Mutation{{Op: OpUpdate, Table: "city", Key: "", Values: []string{"c9", "x"}}}, "empty key"},
		{"unknown key", []Mutation{{Op: OpDelete, Table: "city", Key: "c9"}}, "no row with"},
	}
	for _, tc := range cases {
		if _, _, err := db.Apply(tc.muts); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// Duplicate keys are rejected at insert and at re-keying updates:
	// a second live row under one key would be unaddressable forever.
	if _, _, err := db.Apply([]Mutation{{Op: OpInsert, Table: "city", Values: []string{"c1", "dupe"}}}); err == nil ||
		!strings.Contains(err.Error(), "already has a row") {
		t.Fatalf("duplicate insert: err = %v", err)
	}
	if _, _, err := db.Apply([]Mutation{{Op: OpUpdate, Table: "city", Key: "c2", Values: []string{"c1", "paris"}}}); err == nil ||
		!strings.Contains(err.Error(), "already has a row") {
		t.Fatalf("re-keying update onto live key: err = %v", err)
	}

	// Deleted keys stop resolving and become insertable again; double
	// delete fails cleanly.
	db2, _, err := db.Apply([]Mutation{{Op: OpDelete, Table: "city", Key: "c1"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db2.Apply([]Mutation{{Op: OpDelete, Table: "city", Key: "c1"}}); err == nil {
		t.Fatal("double delete accepted")
	}
	if _, _, err := db2.Apply([]Mutation{{Op: OpInsert, Table: "city", Values: []string{"c1", "londres"}}}); err != nil {
		t.Fatalf("re-insert of deleted key rejected: %v", err)
	}
}

func TestApplyDuplicateTokenCounts(t *testing.T) {
	db := mutTestDB(t)
	// "stone stone" satisfies the duplicated bag; after deleting p2 the
	// maxCount shortcut must be maintained so the bag matches nothing.
	if got := db.Table("person").SelectContains("name", []string{"stone", "stone"}); len(got) != 1 {
		t.Fatalf("precondition: %v", got)
	}
	db2, _, err := db.Apply([]Mutation{{Op: OpDelete, Table: "person", Key: "p2"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Table("person").SelectContains("name", []string{"stone", "stone"}); len(got) != 0 {
		t.Fatalf("stale duplicated-bag match: %v", got)
	}
	// Re-insert with a single occurrence: the bag still must not match.
	db3, _, err := db2.Apply([]Mutation{{Op: OpInsert, Table: "person", Values: []string{"p5", "gia stone"}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := db3.Table("person").SelectContains("name", []string{"stone", "stone"}); len(got) != 0 {
		t.Fatalf("maxCount not maintained: %v", got)
	}
	if got := db3.Table("person").SelectContains("name", []string{"stone"}); len(got) != 1 {
		t.Fatalf("single stone: %v", got)
	}
	assertSelectionsAgree(t, db3, mutProbes)
}

// TestApplyRandomizedDifferential drives random mutation chains and
// cross-checks postings vs scan and indexes vs scan after every batch,
// plus execution agreement of a fixed join plan.
func TestApplyRandomizedDifferential(t *testing.T) {
	db := mutTestDB(t)
	rng := rand.New(rand.NewSource(7))
	words := []string{"alice", "stone", "rivers", "moved", "1999", "quartz", "delta"}
	plan := &JoinPlan{
		Nodes: []JoinNode{
			{Table: "person", Predicates: []Predicate{{Column: "name", Keywords: []string{"rivers"}}}},
			{Table: "lives"},
			{Table: "city"},
		},
		Edges: []JoinEdge{
			{From: 1, To: 0, FromColumn: "pid", ToColumn: "id"},
			{From: 1, To: 2, FromColumn: "cid", ToColumn: "id"},
		},
	}
	serial := 0
	for round := 0; round < 40; round++ {
		var muts []Mutation
		// Each key is targeted at most once per batch, so a later mutation
		// cannot address a row an earlier one deleted.
		usedKeys := make(map[string]bool)
		for n := 1 + rng.Intn(3); n > 0; n-- {
			tb := db.Tables()[rng.Intn(db.NumTables())]
			name := tb.Schema.Name
			textCol := tb.Schema.TextColumns()[0]
			ci := tb.Schema.ColumnIndex(textCol)
			switch rng.Intn(3) {
			case 0:
				serial++
				vals := make([]string, len(tb.Schema.Columns))
				for i := range vals {
					vals[i] = "k" + name + string(rune('0'+serial%10)) + string(rune('a'+serial/10%26))
				}
				vals[0] = name + "key" + string(rune('a'+serial%26)) + string(rune('a'+serial/26%26))
				vals[ci] = words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
				if usedKeys[name+"\x00"+vals[0]] {
					continue
				}
				usedKeys[name+"\x00"+vals[0]] = true
				muts = append(muts, Mutation{Op: OpInsert, Table: name, Values: vals})
			case 1:
				if id := liveRow(rng, tb); id >= 0 {
					vals := append([]string(nil), tb.Rows()[id].Values...)
					if usedKeys[name+"\x00"+vals[0]] {
						continue
					}
					usedKeys[name+"\x00"+vals[0]] = true
					vals[ci] = words[rng.Intn(len(words))]
					muts = append(muts, Mutation{Op: OpUpdate, Table: name, Key: vals[0], Values: vals})
				}
			default:
				if id := liveRow(rng, tb); id >= 0 {
					key := tb.Rows()[id].Values[0]
					if usedKeys[name+"\x00"+key] {
						continue
					}
					usedKeys[name+"\x00"+key] = true
					muts = append(muts, Mutation{Op: OpDelete, Table: name, Key: key})
				}
			}
		}
		if len(muts) == 0 {
			continue
		}
		ndb, _, err := db.Apply(muts)
		if err != nil {
			// Key collisions on random inserts are possible; skip.
			if strings.Contains(err.Error(), "already has a row with") {
				continue
			}
			t.Fatalf("round %d: %v", round, err)
		}
		db = ndb
		assertSelectionsAgree(t, db, mutProbes)
		assertIndexesAgree(t, db)
		got, err := db.Execute(plan, ExecuteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := db.ExecuteScan(plan, ExecuteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: Execute %v, ExecuteScan %v", round, got, want)
		}
	}
}

func liveRow(rng *rand.Rand, t *Table) int {
	if t.NumLive() == 0 {
		return -1
	}
	for {
		id := rng.Intn(t.Len())
		if t.Live(id) {
			return id
		}
	}
}
