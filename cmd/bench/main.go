// Command bench runs the interpretation-pipeline benchmark grid (keyword
// count × parallelism, plus score-cache ablations — the same grid as
// BenchmarkPipelineSequentialVsParallel) and writes the measurements to a
// JSON file, so the perf trajectory is tracked from PR to PR by CI.
//
// Usage:
//
//	go run ./cmd/bench [-out BENCH_pipeline.json] [-quick]
//
// The output records ns/op, allocations, and the speedup of every
// parallel leg against its sequential (p=1) baseline, alongside the host
// shape (CPU count, GOMAXPROCS) needed to interpret absolute numbers.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/benchpipe"
)

// report is the top-level shape of BENCH_pipeline.json.
type report struct {
	GeneratedAt string          `json:"generated_at"`
	GoVersion   string          `json:"go_version"`
	NumCPU      int             `json:"num_cpu"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	Dataset     string          `json:"dataset"`
	Rows        []benchpipe.Row `json:"rows"`
}

func main() {
	out := flag.String("out", "BENCH_pipeline.json", "output file")
	quick := flag.Bool("quick", false, "run the trimmed quick grid")
	flag.Parse()

	cases := benchpipe.Cases(*quick)
	log.Printf("running %d pipeline benchmark cases (quick=%v)...", len(cases), *quick)
	rows, err := benchpipe.Measure(cases)
	if err != nil {
		log.Fatal(err)
	}
	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Dataset:     "demo-movies scaled 2.5x",
		Rows:        rows,
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		log.Printf("%-22s %12d ns/op  speedup %.2fx", r.Name, r.NsPerOp, r.SpeedupVsSequential)
	}
	log.Printf("wrote %s", *out)
}
