package relstore

import (
	"sort"
	"strings"
	"sync"
)

// SelectionCache memoises keyword-containment selections across the plans
// of one request. A top-k request executes dozens of candidate networks,
// and the same (table, column, keyword-bag) selection recurs in most of
// them — e.g. every network binding "hanks" to actor.name repeats the
// σ_{hanks ∈ name}(actor) selection. The cache computes each distinct
// selection once and shares the resulting row list.
//
// Keys are (table, column position, canonical keyword bag), where the bag
// is lower-cased and sorted so permutations of the same bag share one
// entry. Values are the ascending RowID lists produced by the posting
// machinery; they are shared between plans and with the posting lists
// themselves, so callers must treat them as read-only.
//
// The cache is safe for concurrent use — plans of one request execute in
// parallel waves — and is scoped to a single request: create one per
// Search / TopKContext / Naive call and drop it afterwards. Because the
// underlying data is immutable after Build, a cached selection can never
// go stale within a request, so caching changes how results are computed,
// never which results are produced.
type SelectionCache struct {
	mu sync.RWMutex
	m  map[selectionKey][]int
}

// selectionKey identifies one memoised selection.
type selectionKey struct {
	t   *Table
	col int
	bag string
}

// NewSelectionCache creates an empty selection cache.
func NewSelectionCache() *SelectionCache {
	return &SelectionCache{m: make(map[selectionKey][]int)}
}

// Len returns the number of distinct selections memoised so far.
func (c *SelectionCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// bagKey canonicalises a keyword bag: lower-cased, sorted, NUL-joined.
func bagKey(keywords []string) string {
	if len(keywords) == 0 {
		return ""
	}
	if len(keywords) == 1 {
		return strings.ToLower(keywords[0])
	}
	lowered := make([]string, len(keywords))
	for i, k := range keywords {
		lowered[i] = strings.ToLower(k)
	}
	sort.Strings(lowered)
	return strings.Join(lowered, "\x00")
}

// selection returns the memoised bag-containment selection over the
// table's column, computing it via the posting lists on first use. The
// returned slice is shared and read-only. A nil cache is valid and simply
// computes the selection directly.
func (c *SelectionCache) selection(t *Table, ci int, keywords []string) []int {
	if c == nil {
		return t.selectPostings(ci, keywords)
	}
	key := selectionKey{t: t, col: ci, bag: bagKey(keywords)}
	c.mu.RLock()
	rows, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		return rows
	}
	rows = t.selectPostings(ci, keywords)
	c.mu.Lock()
	// Re-check under the write lock: a racing goroutine may have stored
	// the same (deterministic) selection; keep one copy either way.
	if prev, ok := c.m[key]; ok {
		rows = prev
	} else {
		c.m[key] = rows
	}
	c.mu.Unlock()
	return rows
}
