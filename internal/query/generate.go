package query

import (
	"context"
	"sort"
	"strings"

	"repro/internal/invindex"
	"repro/internal/schemagraph"
)

// Candidates holds, for every keyword position of a keyword query, the
// keyword interpretations that are valid against the database: value
// matches found via the inverted index plus schema-term matches
// (Section 3.5.1). Keywords with no match anywhere are excluded from the
// construction process, as in Section 3.5.2 ("in case one of the keywords
// is misspelled or does not exist in the target database, it is excluded").
type Candidates struct {
	Keywords   []string
	PerKeyword [][]KeywordInterpretation
	// Unmatched lists keyword positions with no interpretation at all.
	Unmatched []int
}

// GenerateOptionsConfig tunes candidate generation.
type GenerateOptionsConfig struct {
	// IncludeSchemaTerms enables KindTable/KindColumn interpretations
	// (matching keywords against table and attribute names, §2.2.7).
	IncludeSchemaTerms bool
	// MaxPerKeyword caps the number of interpretations kept per keyword
	// (0 = unlimited). When capping, value interpretations with higher
	// term counts are preferred.
	MaxPerKeyword int
	// IncludeAggregates recognises aggregation keywords ("number",
	// "count", "many", "total") as COUNT operators — the analytical
	// keyword queries of Section 2.2.7.
	IncludeAggregates bool
}

// aggregateKeywords maps recognised aggregation keywords to operators.
var aggregateKeywords = map[string]string{
	"number": "count", "count": "count", "many": "count", "total": "count",
}

// GenerateCandidates computes the candidate keyword interpretations of
// every keyword against the index. It is the context-free convenience
// form of GenerateCandidatesContext.
func GenerateCandidates(ix *invindex.Index, keywords []string, cfg GenerateOptionsConfig) *Candidates {
	c, _ := GenerateCandidatesContext(context.Background(), ix, keywords, cfg)
	return c
}

// GenerateCandidatesContext is GenerateCandidates with cancellation: the
// context is checked before each keyword's index lookups, so a cancelled
// or expired request aborts candidate generation early.
func GenerateCandidatesContext(ctx context.Context, ix *invindex.Index, keywords []string, cfg GenerateOptionsConfig) (*Candidates, error) {
	c := &Candidates{Keywords: normalizeKeywords(keywords)}
	c.PerKeyword = make([][]KeywordInterpretation, len(c.Keywords))
	for pos, kw := range c.Keywords {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var kis []KeywordInterpretation
		postings := ix.Lookup(kw)
		// Sort value matches by descending count for stable capping.
		sort.Slice(postings, func(i, j int) bool {
			if postings[i].Count != postings[j].Count {
				return postings[i].Count > postings[j].Count
			}
			return postings[i].Attr.String() < postings[j].Attr.String()
		})
		for _, p := range postings {
			kis = append(kis, KeywordInterpretation{
				Pos: pos, Keyword: kw, Kind: KindValue, Attr: p.Attr,
			})
		}
		if cfg.IncludeAggregates {
			if agg, ok := aggregateKeywords[kw]; ok {
				kis = append(kis, KeywordInterpretation{
					Pos: pos, Keyword: kw, Kind: KindAggregate, Agg: agg,
				})
			}
		}
		if cfg.IncludeSchemaTerms {
			for _, tbl := range ix.MatchTables(kw) {
				kis = append(kis, KeywordInterpretation{
					Pos: pos, Keyword: kw, Kind: KindTable, Table: tbl,
				})
			}
			for _, attr := range ix.MatchColumns(kw) {
				kis = append(kis, KeywordInterpretation{
					Pos: pos, Keyword: kw, Kind: KindColumn, Attr: attr,
				})
			}
		}
		if cfg.MaxPerKeyword > 0 && len(kis) > cfg.MaxPerKeyword {
			kis = kis[:cfg.MaxPerKeyword]
		}
		if len(kis) == 0 {
			c.Unmatched = append(c.Unmatched, pos)
		}
		c.PerKeyword[pos] = kis
	}
	return c, nil
}

// MatchedPositions returns the keyword positions that have at least one
// interpretation.
func (c *Candidates) MatchedPositions() []int {
	var out []int
	for pos, kis := range c.PerKeyword {
		if len(kis) > 0 {
			out = append(out, pos)
		}
	}
	return out
}

// SpaceSize returns the product of per-keyword candidate counts over
// matched keywords — an upper bound on the number of binding combinations
// before template compatibility is applied. It saturates at maxInt/2 to
// avoid overflow on large schemas.
func (c *Candidates) SpaceSize() int {
	const cap = int(^uint(0)>>1) / 2
	size := 1
	for _, kis := range c.PerKeyword {
		if len(kis) == 0 {
			continue
		}
		if size > cap/len(kis) {
			return cap
		}
		size *= len(kis)
	}
	return size
}

func normalizeKeywords(keywords []string) []string {
	out := make([]string, len(keywords))
	for i, k := range keywords {
		out[i] = strings.ToLower(strings.TrimSpace(k))
	}
	return out
}

// Catalog is the template catalogue of a database (Section 3.5.2): the
// set of pre-computed query templates with optional usage counts from a
// query log.
type Catalog struct {
	Templates []*Template
	// UsageCount holds the query-log frequency per template ID; nil when no
	// log is available (all templates equally probable, §3.6.2).
	UsageCount map[int]int
}

// BuildCatalog enumerates templates from the schema graph up to the given
// join-path length (the automatic generation method of Section 3.5.2).
func BuildCatalog(g *schemagraph.Graph, opts schemagraph.EnumerateOptions) *Catalog {
	trees := g.EnumerateJoinTrees(opts)
	cat := &Catalog{Templates: make([]*Template, len(trees))}
	for i, tr := range trees {
		cat.Templates[i] = NewTemplate(i, tr)
	}
	return cat
}

// RecordUsage adds query-log usage counts (the log-mining method of
// Section 3.5.2).
func (c *Catalog) RecordUsage(templateID, count int) {
	if c.UsageCount == nil {
		c.UsageCount = make(map[int]int)
	}
	c.UsageCount[templateID] += count
}

// TotalUsage returns the total number of logged queries.
func (c *Catalog) TotalUsage() int {
	n := 0
	for _, v := range c.UsageCount {
		n += v
	}
	return n
}

// GenerateConfig bounds complete-interpretation enumeration.
type GenerateConfig struct {
	// MaxInterpretations caps the number of complete interpretations
	// (0 = unlimited). Enumeration visits templates in catalogue order
	// (breadth-first by size), so the cap keeps the smallest join paths.
	MaxInterpretations int
	// RequireAllKeywords demands complete interpretations bind every
	// matched keyword (AND semantics). When false, enumeration is still
	// over all matched keywords; unmatched keywords are always skipped.
	RequireAllKeywords bool
}

// GenerateComplete enumerates the complete query interpretations of the
// keyword query over the template catalogue (the interpretation space of
// Definition 3.5.5 restricted to matched keywords), applying the
// minimality condition of Definition 3.5.4(2). It is the context-free
// convenience form of GenerateCompleteContext.
func GenerateComplete(c *Candidates, cat *Catalog, cfg GenerateConfig) []*Interpretation {
	out, _ := GenerateCompleteContext(context.Background(), c, cat, cfg)
	return out
}

// GenerateCompleteContext is GenerateComplete with cancellation: the
// context is checked on entry and once per catalogue template, so an
// interpretation-space materialisation over a large catalogue aborts as
// soon as the request is cancelled or its deadline passes.
func GenerateCompleteContext(ctx context.Context, c *Candidates, cat *Catalog, cfg GenerateConfig) ([]*Interpretation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	matched := c.MatchedPositions()
	if len(matched) == 0 {
		return nil, nil
	}
	var out []*Interpretation
	seen := make(map[string]bool)
	for _, tpl := range cat.Templates {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, bindings := range enumerateBindings(c, matched, tpl) {
			q := NewInterpretation(c.Keywords, tpl, bindings)
			if !minimal(q) {
				continue
			}
			key := q.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, q)
			if cfg.MaxInterpretations > 0 && len(out) >= cfg.MaxInterpretations {
				return out, nil
			}
		}
	}
	return out, nil
}

// enumerateBindings enumerates all assignments of every matched keyword to
// a candidate interpretation compatible with the template, including the
// choice of table occurrence for self-join templates.
func enumerateBindings(c *Candidates, matched []int, tpl *Template) [][]Binding {
	var out [][]Binding
	cur := make([]Binding, 0, len(matched))
	var rec func(i int)
	rec = func(i int) {
		if i == len(matched) {
			bs := make([]Binding, len(cur))
			copy(bs, cur)
			out = append(out, bs)
			return
		}
		pos := matched[i]
		for _, ki := range c.PerKeyword[pos] {
			if ki.Kind == KindAggregate {
				cur = append(cur, Binding{KI: ki, Occ: -1})
				rec(i + 1)
				cur = cur[:len(cur)-1]
				continue
			}
			occs := tpl.Occurrences(ki.TargetTable())
			for _, occ := range occs {
				cur = append(cur, Binding{KI: ki, Occ: occ})
				rec(i + 1)
				cur = cur[:len(cur)-1]
			}
		}
	}
	rec(0)
	return out
}

// minimal implements Definition 3.5.4(2): no sub-structure of the query can
// be removed while leaving a valid structured query with the same keyword
// bindings. For join trees this holds iff every leaf occurrence of the
// template carries at least one binding; we apply it transitively by
// peeling free leaves.
func minimal(q *Interpretation) bool {
	tree := q.Template.Tree
	n := tree.Size()
	grounded := 0
	for _, b := range q.Bindings {
		if b.Occ >= 0 {
			grounded++
		}
	}
	if grounded == 0 {
		return false // an aggregate alone does not justify any structure
	}
	if n == 1 {
		return true
	}
	bound := make([]bool, n)
	for _, b := range q.Bindings {
		if b.Occ >= 0 {
			bound[b.Occ] = true
		}
	}
	deg := make([]int, n)
	adj := make([][]int, n)
	for _, e := range tree.TreeEdges {
		deg[e.From]++
		deg[e.To]++
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	// Peel unbound leaves; if any can be peeled the query is non-minimal.
	for i := 0; i < n; i++ {
		if deg[i] <= 1 && !bound[i] {
			return false
		}
	}
	return true
}

// FilterSegments keeps the interpretations where every segment's keyword
// positions are bound as values of the same attribute of the same table
// occurrence — the phrase constraint of query segmentation
// (Section 2.2.1): once "tom hanks" is recognised as a phrase, readings
// that scatter the two tokens across attributes are discarded. Segments
// with fewer than two positions are ignored; positions unbound in an
// interpretation are ignored (partial interpretations pass).
func FilterSegments(space []*Interpretation, segments [][]int) []*Interpretation {
	if len(segments) == 0 {
		return space
	}
	var out []*Interpretation
	for _, q := range space {
		if segmentsRespected(q, segments) {
			out = append(out, q)
		}
	}
	return out
}

func segmentsRespected(q *Interpretation, segments [][]int) bool {
	byPos := make(map[int]Binding, len(q.Bindings))
	for _, b := range q.Bindings {
		byPos[b.KI.Pos] = b
	}
	for _, seg := range segments {
		if len(seg) < 2 {
			continue
		}
		var first *Binding
		for _, pos := range seg {
			b, ok := byPos[pos]
			if !ok {
				continue
			}
			if b.KI.Kind != KindValue {
				return false
			}
			if first == nil {
				bb := b
				first = &bb
				continue
			}
			if b.KI.Attr != first.KI.Attr || b.Occ != first.Occ {
				return false
			}
		}
	}
	return true
}

// CollectOptions derives the pool of single-element query construction
// options from the interpretation space: one option per distinct keyword
// interpretation used by at least one interpretation in the space.
func CollectOptions(space []*Interpretation) []Option {
	seen := make(map[string]KeywordInterpretation)
	for _, q := range space {
		for _, b := range q.Bindings {
			seen[b.KI.Key()] = b.KI
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Option, 0, len(keys))
	for _, k := range keys {
		out = append(out, NewOption(seen[k]))
	}
	return out
}
