package topk

import (
	"testing"

	"repro/internal/invindex"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/schemagraph"
)

type fixture struct {
	db     *relstore.Database
	ix     *invindex.Index
	cat    *query.Catalog
	model  *prob.Model
	ranked []prob.Scored
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	db := relstore.NewDatabase("movies")
	must := func(s *relstore.TableSchema) *relstore.Table {
		tb, err := db.CreateTable(s)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	actor := must(&relstore.TableSchema{
		Name:       "actor",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	movie := must(&relstore.TableSchema{
		Name:       "movie",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "title", Indexed: true}},
		PrimaryKey: "id",
	})
	acts := must(&relstore.TableSchema{
		Name:    "acts",
		Columns: []relstore.Column{{Name: "actor_id"}, {Name: "movie_id"}, {Name: "role", Indexed: true}},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
			{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
		},
	})
	ins := func(tb *relstore.Table, vals ...string) {
		t.Helper()
		if _, err := tb.Insert(vals...); err != nil {
			t.Fatal(err)
		}
	}
	ins(actor, "a1", "Tom Hanks")
	ins(actor, "a2", "Hanks Hanks") // higher TF for "hanks"
	ins(actor, "a3", "Tom Cruise")
	ins(movie, "m1", "Hanks of the River")
	ins(movie, "m2", "Big")
	ins(acts, "a1", "m2", "Josh")
	ins(acts, "a2", "m1", "Officer Hanks")
	ix := invindex.Build(db)
	g := schemagraph.FromDatabase(db)
	cat := query.BuildCatalog(g, schemagraph.EnumerateOptions{MaxNodes: 3})
	model := prob.New(ix, cat, prob.Config{})
	c := query.GenerateCandidates(ix, []string{"hanks"}, query.GenerateOptionsConfig{})
	space := query.GenerateComplete(c, cat, query.GenerateConfig{})
	ranked := model.Rank(space)
	if len(ranked) < 3 {
		t.Fatalf("fixture space too small: %d", len(ranked))
	}
	return &fixture{db: db, ix: ix, cat: cat, model: model, ranked: ranked}
}

func TestTopKMatchesNaive(t *testing.T) {
	f := newFixture(t)
	for _, k := range []int{1, 2, 3, 5, 100} {
		for _, scorer := range []Scorer{UnitScorer{}, &TFScorer{IX: f.ix}} {
			got, _, err := TopK(f.db, f.ranked, scorer, Options{K: k})
			if err != nil {
				t.Fatal(err)
			}
			want, err := Naive(f.db, f.ranked, scorer, Options{K: k})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d: TopK %d results, Naive %d", k, len(got), len(want))
			}
			for i := range got {
				// Scores must agree; result identity may permute on ties.
				if got[i].Score != want[i].Score {
					t.Fatalf("k=%d rank %d: score %v vs %v", k, i, got[i].Score, want[i].Score)
				}
			}
		}
	}
}

func TestTopKSortedDescending(t *testing.T) {
	f := newFixture(t)
	got, _, err := TopK(f.db, f.ranked, &TFScorer{IX: f.ix}, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no results")
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatal("results not sorted")
		}
	}
}

func TestTopKEarlyStops(t *testing.T) {
	f := newFixture(t)
	// With k=1 and a dominant first interpretation, later ones are pruned.
	_, stats, err := TopK(f.db, f.ranked, UnitScorer{}, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped == 0 {
		t.Fatalf("expected pruning, stats=%+v", stats)
	}
	if stats.Executed+stats.Skipped > len(f.ranked) {
		t.Fatalf("bookkeeping wrong: %+v over %d", stats, len(f.ranked))
	}
}

func TestTopKValidation(t *testing.T) {
	f := newFixture(t)
	if _, _, err := TopK(f.db, f.ranked, nil, Options{}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := Naive(f.db, f.ranked, nil, Options{}); err == nil {
		t.Fatal("Naive K=0 accepted")
	}
	// nil scorer defaults to UnitScorer.
	got, _, err := TopK(f.db, f.ranked, nil, Options{K: 2})
	if err != nil || len(got) == 0 {
		t.Fatalf("nil scorer: %v", err)
	}
}

func TestTFScorerPrefersDenserMatches(t *testing.T) {
	f := newFixture(t)
	// Among results of the actor.name interpretation, "Hanks Hanks"
	// (TF=1.0) must outscore "Tom Hanks" (TF=0.5).
	var actorQ *prob.Scored
	for i := range f.ranked {
		q := f.ranked[i].Q
		if q.Template.Size() == 1 && q.Bindings[0].KI.Attr.String() == "actor.name" {
			actorQ = &f.ranked[i]
			break
		}
	}
	if actorQ == nil {
		t.Fatal("actor.name interpretation missing")
	}
	res, _, err := TopK(f.db, []prob.Scored{*actorQ}, &TFScorer{IX: f.ix}, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	name, _ := f.db.Table("actor").Value(res[0].Rows[0], "name")
	if name != "Hanks Hanks" {
		t.Fatalf("top result = %q, want the denser match", name)
	}
	if res[0].Score <= res[1].Score {
		t.Fatal("TF factor did not separate the results")
	}
}

func TestPerInterpretationLimit(t *testing.T) {
	f := newFixture(t)
	_, stats, err := TopK(f.db, f.ranked, UnitScorer{}, Options{K: 100, PerInterpretationLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Materialized > stats.Executed {
		t.Fatalf("limit violated: %+v", stats)
	}
}

func TestUnitScorerFactor(t *testing.T) {
	if (UnitScorer{}).Factor(nil, nil, relstore.JTT{}) != 1 {
		t.Fatal("unit factor != 1")
	}
}

func TestTFScorerKeywordFreeNodes(t *testing.T) {
	f := newFixture(t)
	// An interpretation without value predicates gets the neutral factor.
	s := &TFScorer{IX: f.ix}
	plan := &relstore.JoinPlan{Nodes: []relstore.JoinNode{{Table: "actor"}}}
	if got := s.Factor(f.db, plan, relstore.JTT{Rows: []int{0}}); got != 1 {
		t.Fatalf("neutral factor = %v", got)
	}
}

func TestTopKPropagatesPlanErrors(t *testing.T) {
	f := newFixture(t)
	// A template-less interpretation cannot produce a join plan.
	broken := []prob.Scored{{Q: &query.Interpretation{Keywords: []string{"x"}}, Score: 1}}
	if _, _, err := TopK(f.db, broken, UnitScorer{}, Options{K: 1}); err == nil {
		t.Fatal("plan error not propagated by TopK")
	}
	if _, err := Naive(f.db, broken, UnitScorer{}, Options{K: 1}); err == nil {
		t.Fatal("plan error not propagated by Naive")
	}
}

func TestTopKEmptyRankedList(t *testing.T) {
	f := newFixture(t)
	res, stats, err := TopK(f.db, nil, UnitScorer{}, Options{K: 3})
	if err != nil || len(res) != 0 || stats.Executed != 0 {
		t.Fatalf("empty input: res=%v stats=%+v err=%v", res, stats, err)
	}
}

func TestTFScorerMissingValueColumn(t *testing.T) {
	f := newFixture(t)
	s := &TFScorer{IX: f.ix}
	plan := &relstore.JoinPlan{Nodes: []relstore.JoinNode{{
		Table:      "actor",
		Predicates: []relstore.Predicate{{Column: "ghost", Keywords: []string{"hanks"}}},
	}}}
	// A predicate on an unknown column contributes nothing; with no other
	// matched keyword the factor is neutral.
	if got := s.Factor(f.db, plan, relstore.JTT{Rows: []int{0}}); got != 1 {
		t.Fatalf("factor = %v", got)
	}
}
