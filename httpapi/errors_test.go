package httpapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	keysearch "repro"
)

// postRaw sends an arbitrary body (not necessarily JSON) and returns the
// status code.
func postRaw(t *testing.T, client *http.Client, url, body string) int {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestHTTPMalformedBodies: every POST endpoint rejects syntactically
// broken, type-mismatched, and unknown-field bodies with 400.
func TestHTTPMalformedBodies(t *testing.T) {
	eng := demoEngine(t)
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	endpoints := []string{"/v1/search", "/v1/diversify", "/v1/rows", "/v1/mutate", "/v1/construct"}
	bodies := []struct {
		name, body string
	}{
		{"truncated", `{"query": "tom`},
		{"not json", `this is not json`},
		{"wrong type", `{"query": 42}`},
		{"unknown field", `{"query": "tom", "surprise": true}`},
		{"array instead of object", `[1,2,3]`},
	}
	for _, ep := range endpoints {
		for _, b := range bodies {
			if code := postRaw(t, ts.Client(), ts.URL+ep, b.body); code != http.StatusBadRequest {
				t.Errorf("%s with %s body: status = %d, want 400", ep, b.name, code)
			}
		}
	}
}

// TestHTTPWrongMethods: the method-scoped mux patterns reject mismatched
// verbs with 405.
func TestHTTPWrongMethods(t *testing.T) {
	eng := demoEngine(t)
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	check := func(method, path string, want int) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s %s: status = %d, want %d", method, path, resp.StatusCode, want)
		}
	}
	check(http.MethodGet, "/v1/search", http.StatusMethodNotAllowed)
	check(http.MethodGet, "/v1/mutate", http.StatusMethodNotAllowed)
	check(http.MethodDelete, "/v1/rows", http.StatusMethodNotAllowed)
	check(http.MethodPost, "/v1/keywords", http.StatusMethodNotAllowed)
	check(http.MethodPut, "/healthz", http.StatusMethodNotAllowed)
	check(http.MethodPost, "/v1/unknown", http.StatusNotFound)
}

// TestHTTPExpiredConstructSession: a session answered after its TTL is
// gone (404), and construct actions validate their inputs.
func TestHTTPExpiredConstructSession(t *testing.T) {
	eng := demoEngine(t)
	now := time.Now()
	clock := func() time.Time { return now }
	ts := httptest.NewServer(New(eng, WithSessionTTL(time.Minute), WithClock(clock)))
	defer ts.Close()

	q := eng.SampleQueries(1)[0]
	var step ConstructStepResponse
	if code := post(t, ts.Client(), ts.URL+"/v1/construct", ConstructStepRequest{
		Action: "start",
		Start:  &keysearch.ConstructRequest{Query: q, StopAtRemaining: 1},
	}, &step); code != http.StatusOK {
		t.Fatalf("start = %d", code)
	}
	if step.SessionID == "" {
		t.Fatal("no session id")
	}

	// Advance past the TTL: the session is purged.
	now = now.Add(2 * time.Minute)
	var eres ErrorResponse
	if code := post(t, ts.Client(), ts.URL+"/v1/construct", ConstructStepRequest{
		Action: "accept", SessionID: step.SessionID,
	}, &eres); code != http.StatusNotFound {
		t.Fatalf("accept on expired session = %d, want 404", code)
	}
	if !strings.Contains(eres.Error, "expired") {
		t.Fatalf("error = %q", eres.Error)
	}
	// Same for candidates and cancel.
	if code := post(t, ts.Client(), ts.URL+"/v1/construct", ConstructStepRequest{
		Action: "candidates", SessionID: step.SessionID,
	}, &eres); code != http.StatusNotFound {
		t.Fatalf("candidates on expired session = %d, want 404", code)
	}
	if code := post(t, ts.Client(), ts.URL+"/v1/construct", ConstructStepRequest{
		Action: "cancel", SessionID: step.SessionID,
	}, &eres); code != http.StatusNotFound {
		t.Fatalf("cancel on expired session = %d, want 404", code)
	}

	// Bad construct inputs.
	if code := post(t, ts.Client(), ts.URL+"/v1/construct", ConstructStepRequest{Action: "start"}, &eres); code != http.StatusBadRequest {
		t.Fatalf("start without body = %d, want 400", code)
	}
	if code := post(t, ts.Client(), ts.URL+"/v1/construct", ConstructStepRequest{Action: "dance"}, &eres); code != http.StatusBadRequest {
		t.Fatalf("unknown action = %d, want 400", code)
	}
}

// TestHTTPKeywordsValidation: the only GET endpoint with parameters
// rejects a bad limit.
func TestHTTPKeywordsValidation(t *testing.T) {
	eng := demoEngine(t)
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/keywords?prefix=t&limit=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit = %d, want 400", resp.StatusCode)
	}
}
