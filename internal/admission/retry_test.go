package admission

import (
	"testing"
	"time"
)

// TestRetryAfterDrainScenarios is the table-driven pin on the
// drain-rate-scaled Retry-After: the estimate is the time for the
// backlog (plus the retrying client) to drain at limit slots per
// average service time, clamped to [min, max].
func TestRetryAfterDrainScenarios(t *testing.T) {
	const (
		minA = 1 * time.Second
		maxA = 30 * time.Second
	)
	cases := []struct {
		name       string
		queued     int
		limit      int
		avgService time.Duration
		want       time.Duration
	}{
		{"no signal yet falls back to min", 10, 4, 0, minA},
		{"empty queue, fast service: floor", 0, 8, 10 * time.Millisecond, minA},
		{"shallow queue drains within the floor", 7, 8, 200 * time.Millisecond, minA},
		{"deep queue, slow drain", 39, 4, 500 * time.Millisecond, 5 * time.Second},
		{"doubling the limit halves the wait", 39, 8, 500 * time.Millisecond, 2500 * time.Millisecond},
		{"slower service scales the wait up", 39, 4, 1 * time.Second, 10 * time.Second},
		{"pathological backlog is capped", 10000, 1, 2 * time.Second, maxA},
		{"zero limit treated as one slot", 4, 0, 1 * time.Second, 5 * time.Second},
		{"negative queue treated as empty", -3, 4, 4 * time.Second, 4 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := RetryAfter(tc.queued, tc.limit, tc.avgService, minA, maxA)
			if got != tc.want {
				t.Fatalf("RetryAfter(%d, %d, %v) = %v, want %v",
					tc.queued, tc.limit, tc.avgService, got, tc.want)
			}
		})
	}

	// Degenerate clamp bounds are reconciled rather than inverted.
	if got := RetryAfter(5, 1, time.Second, 10*time.Second, 2*time.Second); got != 10*time.Second {
		t.Fatalf("inverted clamp: got %v", got)
	}
}
