package qlog

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestEntryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := Entry{
		TraceID:            "abc123",
		Op:                 "search",
		Status:             200,
		Outcome:            "ok",
		Query:              "actor movie 2004",
		Interpretation:     "movies(title~movie) ⋈ cast ⋈ actors(name~actor)",
		InterpretationProb: 0.41,
		EstimatedCost:      1234,
		DurationUS:         5678,
		ShardFanout:        3,
		Results:            10,
		StagesUS:           map[string]int64{"interpret": 120, "execute": 4400},
		Counters:           map[string]int64{"plans_executed": 18, "selection_cache_hits": 4},
	}
	l.Log(want)
	l.Log(Entry{
		Op: "construct", Status: 200, Outcome: "ok",
		Query: "actor movie", SessionID: "s-1", Action: "accept",
		Done: true, ServedChoice: "movies ⋈ cast ⋈ actors", DurationUS: 90,
	})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d entries, want 2", len(got))
	}
	if got[0].TS == "" {
		t.Fatal("TS not stamped")
	}
	got[0].TS = ""
	if fmt.Sprintf("%+v", got[0]) != fmt.Sprintf("%+v", want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got[0], want)
	}
	if !got[1].Done || got[1].ServedChoice != "movies ⋈ cast ⋈ actors" || got[1].Action != "accept" {
		t.Fatalf("construct feedback fields lost: %+v", got[1])
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	if _, err := Decode([]byte("{\"op\":\"search\"}\n\nnot json\n")); err == nil {
		t.Fatal("want error for malformed line")
	} else if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error should name the line: %v", err)
	}
	es, err := Decode([]byte("\n\n"))
	if err != nil || len(es) != 0 {
		t.Fatalf("blank input: %v %v", es, err)
	}
}

func TestRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	// Tiny files force a rotation every few entries; MaxFiles 3 forces
	// pruning.
	l, err := Open(dir, Options{MaxFileBytes: 256, MaxFiles: 3, Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	const total = 60
	for i := 0; i < total; i++ {
		l.Log(Entry{Op: "search", Status: 200, Query: fmt.Sprintf("query number %04d with some padding", i), DurationUS: int64(i)})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	seqs, err := listSeqs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) > 3 {
		t.Fatalf("prune failed: %d files retained (%v)", len(seqs), seqs)
	}
	if len(seqs) < 2 {
		t.Fatalf("rotation never happened: files %v", seqs)
	}
	// Sequence numbers must be the most recent ones.
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("non-contiguous sequences after prune: %v", seqs)
		}
	}
	// Entries that survive must be the tail of the stream, in order.
	got, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no entries survived")
	}
	last := int64(-1)
	for _, e := range got {
		if e.DurationUS <= last {
			t.Fatalf("entries out of order: %d after %d", e.DurationUS, last)
		}
		last = e.DurationUS
	}
	if last != total-1 {
		t.Fatalf("newest entry missing: last DurationUS = %d, want %d", last, total-1)
	}
}

func TestResumeAfterReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Log(Entry{Op: "search", Status: 200, DurationUS: 1})
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l2.Log(Entry{Op: "search", Status: 200, DurationUS: 2})
	l2.Close()

	got, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].DurationUS != 1 || got[1].DurationUS != 2 {
		t.Fatalf("reopen lost or reordered entries: %+v", got)
	}
}

// Backpressure: with the writer unable to drain (tiny buffer, many
// producers), Log must never block and must count drops.
func TestBackpressureDropsOldestWithoutBlocking(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const producers, per = 8, 500
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Log(Entry{Op: "search", Status: 200, DurationUS: int64(p*per + i)})
			}
		}(p)
	}
	wg.Wait() // would deadlock here if Log ever blocked
	l.Close()

	got, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(got))+l.Dropped() < producers*per {
		t.Fatalf("accounting leak: written %d + dropped %d < produced %d",
			len(got), l.Dropped(), producers*per)
	}
	if l.Written() != int64(len(got)) {
		t.Fatalf("Written() = %d but %d lines on disk", l.Written(), len(got))
	}
}

func TestNilLoggerIsInert(t *testing.T) {
	var l *Logger
	l.Log(Entry{Op: "search"})
	if l.Dropped() != 0 || l.Written() != 0 || l.Dir() != "" {
		t.Fatal("nil logger should be zeroes")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleCloseAndIgnoredFiles(t *testing.T) {
	dir := t.TempDir()
	// Foreign files in the directory must not confuse sequence listing.
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, "queries-abc.jsonl"), []byte("x"), 0o644)
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Log(Entry{Op: "search", Status: 200})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d entries, want 1", len(got))
	}
}
