package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/relstore"
)

// IMDBConfig scales the synthetic IMDB-style database. The schema follows
// Section 3.8.1 (seven tables: movies, actors, directors and their
// relationships plus production companies).
type IMDBConfig struct {
	Movies    int
	Actors    int
	Directors int
	Companies int
	// ActsPerMovie is the average cast size.
	ActsPerMovie int
	// NameInTitleProb is the probability that a movie title contains a
	// person-surname token, creating cross-attribute ambiguity.
	NameInTitleProb float64
	Seed            int64
}

func (c *IMDBConfig) defaults() {
	if c.Movies <= 0 {
		c.Movies = 400
	}
	if c.Actors <= 0 {
		c.Actors = 300
	}
	if c.Directors <= 0 {
		c.Directors = 80
	}
	if c.Companies <= 0 {
		c.Companies = 40
	}
	if c.ActsPerMovie <= 0 {
		c.ActsPerMovie = 3
	}
	if c.NameInTitleProb <= 0 {
		c.NameInTitleProb = 0.25
	}
}

// IMDB builds the movie database. Tables:
//
//	actor(id, name)                  director(id, name)
//	movie(id, title, year)           company(id, name)
//	acts(actor_id, movie_id, role)   directs(director_id, movie_id)
//	produced_by(movie_id, company_id)
func IMDB(cfg IMDBConfig) (*relstore.Database, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pools := NewPools(rng, 0)
	db := relstore.NewDatabase("imdb")

	actor, err := db.CreateTable(&relstore.TableSchema{
		Name:       "actor",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	if err != nil {
		return nil, err
	}
	director, err := db.CreateTable(&relstore.TableSchema{
		Name:       "director",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	if err != nil {
		return nil, err
	}
	movie, err := db.CreateTable(&relstore.TableSchema{
		Name:       "movie",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "title", Indexed: true}, {Name: "year", Indexed: true}},
		PrimaryKey: "id",
	})
	if err != nil {
		return nil, err
	}
	company, err := db.CreateTable(&relstore.TableSchema{
		Name:       "company",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	if err != nil {
		return nil, err
	}
	acts, err := db.CreateTable(&relstore.TableSchema{
		Name:    "acts",
		Columns: []relstore.Column{{Name: "actor_id"}, {Name: "movie_id"}, {Name: "role", Indexed: true}},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "actor_id", RefTable: "actor", RefColumn: "id"},
			{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
		},
	})
	if err != nil {
		return nil, err
	}
	directs, err := db.CreateTable(&relstore.TableSchema{
		Name:    "directs",
		Columns: []relstore.Column{{Name: "director_id"}, {Name: "movie_id"}},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "director_id", RefTable: "director", RefColumn: "id"},
			{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
		},
	})
	if err != nil {
		return nil, err
	}
	producedBy, err := db.CreateTable(&relstore.TableSchema{
		Name:    "produced_by",
		Columns: []relstore.Column{{Name: "movie_id"}, {Name: "company_id"}},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "movie_id", RefTable: "movie", RefColumn: "id"},
			{Column: "company_id", RefTable: "company", RefColumn: "id"},
		},
	})
	if err != nil {
		return nil, err
	}

	for i := 0; i < cfg.Actors; i++ {
		if _, err := actor.Insert(fmt.Sprintf("a%d", i), pools.PersonName()); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Directors; i++ {
		if _, err := director.Insert(fmt.Sprintf("d%d", i), pools.PersonName()); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Companies; i++ {
		name := title(pools.Word()) + " " + []string{"Pictures", "Films", "Studios", "Entertainment"}[rng.Intn(4)]
		if _, err := company.Insert(fmt.Sprintf("c%d", i), name); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Movies; i++ {
		if _, err := movie.Insert(fmt.Sprintf("m%d", i), pools.Title(cfg.NameInTitleProb), pools.Year()); err != nil {
			return nil, err
		}
		cast := 1 + rng.Intn(cfg.ActsPerMovie*2-1)
		for j := 0; j < cast; j++ {
			aid := fmt.Sprintf("a%d", rng.Intn(cfg.Actors))
			role := title(pools.First()) + " " + title(pools.Surname())
			if _, err := acts.Insert(aid, fmt.Sprintf("m%d", i), role); err != nil {
				return nil, err
			}
		}
		did := fmt.Sprintf("d%d", rng.Intn(cfg.Directors))
		if _, err := directs.Insert(did, fmt.Sprintf("m%d", i)); err != nil {
			return nil, err
		}
		cid := fmt.Sprintf("c%d", rng.Intn(cfg.Companies))
		if _, err := producedBy.Insert(fmt.Sprintf("m%d", i), cid); err != nil {
			return nil, err
		}
	}
	if err := db.ValidateRefs(); err != nil {
		return nil, err
	}
	return db, nil
}

// LyricsConfig scales the synthetic Lyrics database (five tables with the
// chain schema Artist ⋈ ArtistAlbum ⋈ Album ⋈ AlbumSong ⋈ Song of
// Section 3.8.3).
type LyricsConfig struct {
	Artists        int
	AlbumsPerArt   int
	SongsPerAlbum  int
	NameInSongProb float64
	Seed           int64
}

func (c *LyricsConfig) defaults() {
	if c.Artists <= 0 {
		c.Artists = 150
	}
	if c.AlbumsPerArt <= 0 {
		c.AlbumsPerArt = 2
	}
	if c.SongsPerAlbum <= 0 {
		c.SongsPerAlbum = 5
	}
	if c.NameInSongProb <= 0 {
		c.NameInSongProb = 0.2
	}
}

// Lyrics builds the music database. Tables:
//
//	artist(id, name)        album(id, title, year)      song(id, title, text)
//	artist_album(artist_id, album_id)   album_song(album_id, song_id)
func Lyrics(cfg LyricsConfig) (*relstore.Database, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pools := NewPools(rng, 0)
	db := relstore.NewDatabase("lyrics")

	artist, err := db.CreateTable(&relstore.TableSchema{
		Name:       "artist",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "name", Indexed: true}},
		PrimaryKey: "id",
	})
	if err != nil {
		return nil, err
	}
	album, err := db.CreateTable(&relstore.TableSchema{
		Name:       "album",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "title", Indexed: true}, {Name: "year", Indexed: true}},
		PrimaryKey: "id",
	})
	if err != nil {
		return nil, err
	}
	song, err := db.CreateTable(&relstore.TableSchema{
		Name:       "song",
		Columns:    []relstore.Column{{Name: "id"}, {Name: "title", Indexed: true}, {Name: "text", Indexed: true}},
		PrimaryKey: "id",
	})
	if err != nil {
		return nil, err
	}
	artistAlbum, err := db.CreateTable(&relstore.TableSchema{
		Name:    "artist_album",
		Columns: []relstore.Column{{Name: "artist_id"}, {Name: "album_id"}},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "artist_id", RefTable: "artist", RefColumn: "id"},
			{Column: "album_id", RefTable: "album", RefColumn: "id"},
		},
	})
	if err != nil {
		return nil, err
	}
	albumSong, err := db.CreateTable(&relstore.TableSchema{
		Name:    "album_song",
		Columns: []relstore.Column{{Name: "album_id"}, {Name: "song_id"}},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "album_id", RefTable: "album", RefColumn: "id"},
			{Column: "song_id", RefTable: "song", RefColumn: "id"},
		},
	})
	if err != nil {
		return nil, err
	}

	songID := 0
	albumID := 0
	for a := 0; a < cfg.Artists; a++ {
		aid := fmt.Sprintf("ar%d", a)
		if _, err := artist.Insert(aid, pools.PersonName()); err != nil {
			return nil, err
		}
		nAlbums := 1 + rng.Intn(cfg.AlbumsPerArt*2-1)
		for b := 0; b < nAlbums; b++ {
			alid := fmt.Sprintf("al%d", albumID)
			albumID++
			if _, err := album.Insert(alid, pools.Title(0.1), pools.Year()); err != nil {
				return nil, err
			}
			if _, err := artistAlbum.Insert(aid, alid); err != nil {
				return nil, err
			}
			nSongs := 1 + rng.Intn(cfg.SongsPerAlbum*2-1)
			for s := 0; s < nSongs; s++ {
				sid := fmt.Sprintf("s%d", songID)
				songID++
				if _, err := song.Insert(sid, pools.Title(cfg.NameInSongProb), pools.Sentence(8)); err != nil {
					return nil, err
				}
				if _, err := albumSong.Insert(alid, sid); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := db.ValidateRefs(); err != nil {
		return nil, err
	}
	return db, nil
}
