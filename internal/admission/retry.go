package admission

import "time"

// RetryAfter estimates how long a shed client should wait before the
// backlog it was turned away from has drained: the queued waiters
// ahead of it (plus itself) drain at limit slots per average service
// time, so the wait is ceil((queued+1)/limit) service times. The
// result is clamped to [min, max]; with no observed service time yet
// (avgService <= 0) it falls back to min.
func RetryAfter(queued, limit int, avgService, min, max time.Duration) time.Duration {
	if min < 0 {
		min = 0
	}
	if max < min {
		max = min
	}
	if avgService <= 0 {
		return min
	}
	if limit < 1 {
		limit = 1
	}
	if queued < 0 {
		queued = 0
	}
	rounds := (queued + limit) / limit // ceil((queued+1)/limit)
	d := time.Duration(rounds) * avgService
	if d < min {
		return min
	}
	if d > max {
		return max
	}
	return d
}
