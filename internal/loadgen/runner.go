package loadgen

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/httpapi"
	"repro/internal/metrics"
)

// Options configures one load run against a serving endpoint.
type Options struct {
	// BaseURL is the server to drive, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Ops is the pre-generated workload (BuildWorkload); runners cycle
	// through it.
	Ops []Op
	// Duration is how long to generate load (default 5s).
	Duration time.Duration
	// Workers is the closed-loop concurrency (default 8). In open-loop
	// mode it caps outstanding requests instead.
	Workers int
	// RateRPS, when positive, selects open-loop mode: requests are
	// issued on a fixed schedule of RateRPS arrivals per second and
	// latency is measured from the *scheduled* arrival time, so a
	// stalled server inflates the recorded tail instead of silently
	// slowing the clients (coordinated omission).
	RateRPS float64
	// RequestTimeout bounds each HTTP request (default 30s).
	RequestTimeout time.Duration
	// Client overrides the HTTP client (tests); BaseURL still applies.
	Client *http.Client
}

func (o *Options) defaults() {
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.Client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 4 * o.Workers
		tr.MaxIdleConnsPerHost = 4 * o.Workers
		o.Client = &http.Client{Transport: tr}
	}
}

// KindStats aggregates one request class of a finished run. The shed
// and deadline counters classify by the op's final status — a construct
// dialogue that shed mid-session counts once, under construct.
type KindStats struct {
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	Shed429     int64   `json:"shed_429"`
	Shed503     int64   `json:"shed_503"`
	Deadline504 int64   `json:"deadline_504"`
	P50MS       float64 `json:"p50_ms"`
	P90MS       float64 `json:"p90_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
}

// Result is the outcome of one load run. Goodput counts only 2xx
// responses; sheds (429/503) and deadline expiries (504) are successes
// of the *overload design* but failures of the individual request, so
// they appear in their own counters and not in Goodput.
type Result struct {
	Mode       string        `json:"mode"` // "closed" or "open"
	Workers    int           `json:"workers"`
	TargetRPS  float64       `json:"target_rps,omitempty"`
	Duration   time.Duration `json:"-"`
	DurationMS int64         `json:"duration_ms"`

	Requests      int64   `json:"requests"`
	Goodput       int64   `json:"goodput_requests"`
	Errors        int64   `json:"errors"`
	Shed429       int64   `json:"shed_429"`
	Shed503       int64   `json:"shed_503"`
	Deadline504   int64   `json:"deadline_504"`
	ThroughputRPS float64 `json:"throughput_rps"`
	GoodputRPS    float64 `json:"goodput_rps"`

	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`

	PerKind map[OpKind]KindStats `json:"per_kind"`

	// Histogram is the merged latency histogram of all requests
	// (scheduled-time latencies in open-loop mode).
	Histogram *metrics.LatencyHistogram `json:"-"`
}

// workerState is the per-worker recording area: one histogram per kind
// plus counters, merged after the run so the hot path takes no locks.
type workerState struct {
	hists  map[OpKind]*metrics.LatencyHistogram
	counts map[OpKind]*int64 // requests per kind
	errs   map[OpKind]*int64
	sheds  map[OpKind]*[3]int64 // [429, 503, 504] by final status
}

func newWorkerState() *workerState {
	ws := &workerState{
		hists:  map[OpKind]*metrics.LatencyHistogram{},
		counts: map[OpKind]*int64{},
		errs:   map[OpKind]*int64{},
		sheds:  map[OpKind]*[3]int64{},
	}
	for _, k := range []OpKind{OpSearch, OpRows, OpDiversify, OpConstruct, OpMutate} {
		ws.hists[k] = metrics.NewLatencyHistogram()
		ws.counts[k] = new(int64)
		ws.errs[k] = new(int64)
		ws.sheds[k] = new([3]int64)
	}
	return ws
}

// recordOutcome tallies one completed op into the worker's counters.
func (ws *workerState) recordOutcome(k OpKind, status int, err error, el time.Duration) {
	atomic.AddInt64(ws.counts[k], 1)
	if isError(status, err) {
		atomic.AddInt64(ws.errs[k], 1)
	}
	switch status {
	case http.StatusTooManyRequests:
		atomic.AddInt64(&ws.sheds[k][0], 1)
	case http.StatusServiceUnavailable:
		atomic.AddInt64(&ws.sheds[k][1], 1)
	case http.StatusGatewayTimeout:
		atomic.AddInt64(&ws.sheds[k][2], 1)
	}
	ws.hists[k].Record(el)
}

// runner holds the shared state of one run.
type runner struct {
	opts    Options
	opIndex atomic.Uint64 // next op in the cycle
	shed429 atomic.Int64
	shed503 atomic.Int64
	dl504   atomic.Int64
	// tracePrefix + traceSeq mint one X-Trace-Id per request. A traced
	// server (-trace) adopts the ID, so its query log and slow-query
	// dumps correlate with this client's view of the same request.
	tracePrefix string
	traceSeq    atomic.Uint64
}

// mutateSeq is process-global so consecutive runs against the same
// engine (saturation ramps, repeated bench legs) never reuse a primary
// key from an earlier run's inserts.
var mutateSeq atomic.Uint64

var opPaths = map[OpKind]string{
	OpSearch:    "/v1/search",
	OpRows:      "/v1/rows",
	OpDiversify: "/v1/diversify",
	OpConstruct: "/v1/construct",
	OpMutate:    "/v1/mutate",
}

// issue performs one op and returns its latency class. Construct ops
// drive the whole dialogue (start → answer questions → cancel); the
// recorded latency is the full session wall time, since that is what a
// user of the interactive interface experiences.
func (r *runner) issue(ctx context.Context, op Op) (status int, err error) {
	body := op.Body
	if op.Kind == OpMutate {
		body = mutateBody(body, mutateSeq.Add(1))
	}
	status, resp, err := r.post(ctx, opPaths[op.Kind], body)
	if err != nil || status != http.StatusOK {
		return status, err
	}
	if op.Kind == OpConstruct {
		return r.driveConstruct(ctx, resp)
	}
	return status, nil
}

// driveConstruct answers up to 6 questions of a freshly started
// dialogue (alternating accept/reject like an exploring user), then
// cancels the session so abandoned state never accumulates.
func (r *runner) driveConstruct(ctx context.Context, startBody []byte) (int, error) {
	var step httpapi.ConstructStepResponse
	if err := json.Unmarshal(startBody, &step); err != nil {
		return http.StatusOK, fmt.Errorf("construct start: %w", err)
	}
	actions := [2]string{"accept", "reject"}
	for i := 0; i < 6 && !step.Done && step.Question != nil; i++ {
		req, err := json.Marshal(httpapi.ConstructStepRequest{
			Action:    actions[i%2],
			SessionID: step.SessionID,
		})
		if err != nil {
			return http.StatusOK, err
		}
		status, resp, err := r.post(ctx, "/v1/construct", req)
		if err != nil || status != http.StatusOK {
			return status, err
		}
		step = httpapi.ConstructStepResponse{}
		if err := json.Unmarshal(resp, &step); err != nil {
			return http.StatusOK, err
		}
	}
	if !step.Done {
		req, err := json.Marshal(httpapi.ConstructStepRequest{Action: "cancel", SessionID: step.SessionID})
		if err != nil {
			return http.StatusOK, err
		}
		if status, _, err := r.post(ctx, "/v1/construct", req); err != nil || status != http.StatusOK {
			return status, err
		}
	}
	return http.StatusOK, nil
}

func (r *runner) post(ctx context.Context, path string, body []byte) (int, []byte, error) {
	rctx, cancel := context.WithTimeout(ctx, r.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, r.opts.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", r.tracePrefix+strconv.FormatUint(r.traceSeq.Add(1), 10))
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		r.shed429.Add(1)
	case http.StatusServiceUnavailable:
		r.shed503.Add(1)
	case http.StatusGatewayTimeout:
		r.dl504.Add(1)
	}
	return resp.StatusCode, data, nil
}

// isError classifies a completed request for goodput accounting:
// transport failures and unexpected statuses are errors; 2xx is good;
// 429/503 sheds and 504 deadline expiries are the overload design
// working as intended, tallied in their own counters instead.
func isError(status int, err error) bool {
	if err != nil || status == 0 {
		return true
	}
	switch {
	case status < 400:
		return false
	case status == http.StatusTooManyRequests,
		status == http.StatusServiceUnavailable,
		status == http.StatusGatewayTimeout:
		return false
	default:
		return true
	}
}

// next returns the op each worker should issue, cycling the list.
func (r *runner) next() Op {
	ops := r.opts.Ops
	return ops[int(r.opIndex.Add(1)-1)%len(ops)]
}

// Run drives the endpoint for opts.Duration and aggregates the result.
// RateRPS > 0 selects open-loop mode, otherwise closed-loop.
func Run(ctx context.Context, opts Options) (*Result, error) {
	opts.defaults()
	if len(opts.Ops) == 0 {
		return nil, errors.New("loadgen: no ops to run (BuildWorkload first)")
	}
	var pfx [4]byte
	if _, err := rand.Read(pfx[:]); err != nil {
		return nil, err
	}
	r := &runner{opts: opts, tracePrefix: "lg-" + hex.EncodeToString(pfx[:]) + "-"}
	if opts.RateRPS > 0 {
		return r.runOpen(ctx)
	}
	return r.runClosed(ctx)
}

// runClosed is the closed-loop driver: Workers goroutines, each issuing
// its next op as soon as the previous response arrives. Throughput is
// an *output* (it falls as the server slows); per-request latency is
// recorded as measured, which is honest in closed loop because the
// issuing schedule adapts to the server.
func (r *runner) runClosed(ctx context.Context) (*Result, error) {
	ctx, cancel := context.WithTimeout(ctx, r.opts.Duration)
	defer cancel()
	states := make([]*workerState, r.opts.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < r.opts.Workers; w++ {
		states[w] = newWorkerState()
		wg.Add(1)
		go func(ws *workerState) {
			defer wg.Done()
			for ctx.Err() == nil {
				op := r.next()
				t0 := time.Now()
				status, err := r.issue(ctx, op)
				el := time.Since(t0)
				if ctx.Err() != nil && (err != nil || status == 0) {
					return // shutdown race, not a server failure
				}
				ws.recordOutcome(op.Kind, status, err, el)
			}
		}(states[w])
	}
	wg.Wait()
	return r.aggregate("closed", states, time.Since(start)), nil
}

// runOpen is the open-loop driver: arrivals are scheduled at fixed
// intervals regardless of how the server is doing, and each request's
// latency is measured from its *scheduled* start. A server stall
// therefore back-fills the tail with the queueing delay every scheduled
// arrival experienced — the coordinated-omission correction, by
// construction rather than by after-the-fact adjustment. Workers caps
// outstanding requests; when the cap is hit the arrival still keeps its
// scheduled timestamp, it just waits for a slot (and the wait is in its
// measured latency).
func (r *runner) runOpen(ctx context.Context) (*Result, error) {
	ctx, cancel := context.WithTimeout(ctx, r.opts.Duration)
	defer cancel()
	interval := time.Duration(float64(time.Second) / r.opts.RateRPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	slots := make(chan *workerState, r.opts.Workers)
	for w := 0; w < r.opts.Workers; w++ {
		slots <- newWorkerState()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for sched := start; ctx.Err() == nil; sched = sched.Add(interval) {
		if d := time.Until(sched); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		var ws *workerState
		select {
		case ws = <-slots:
		case <-ctx.Done():
		}
		if ws == nil {
			break
		}
		wg.Add(1)
		go func(ws *workerState, scheduled time.Time) {
			defer wg.Done()
			defer func() { slots <- ws }()
			op := r.next()
			status, err := r.issue(ctx, op)
			el := time.Since(scheduled) // from the schedule, not the send
			if ctx.Err() != nil && (err != nil || status == 0) {
				return
			}
			ws.recordOutcome(op.Kind, status, err, el)
		}(ws, sched)
	}
	wg.Wait()
	elapsed := time.Since(start)
	states := make([]*workerState, 0, r.opts.Workers)
	for len(states) < r.opts.Workers {
		states = append(states, <-slots)
	}
	res := r.aggregate("open", states, elapsed)
	res.TargetRPS = r.opts.RateRPS
	return res, nil
}

// aggregate merges per-worker recordings into the run result.
func (r *runner) aggregate(mode string, states []*workerState, elapsed time.Duration) *Result {
	total := metrics.NewLatencyHistogram()
	perKind := map[OpKind]KindStats{}
	var requests, errs int64
	kinds := []OpKind{OpSearch, OpRows, OpDiversify, OpConstruct, OpMutate}
	for _, k := range kinds {
		h := metrics.NewLatencyHistogram()
		var kreq, kerr int64
		var ksheds [3]int64
		for _, ws := range states {
			h.Merge(ws.hists[k])
			kreq += atomic.LoadInt64(ws.counts[k])
			kerr += atomic.LoadInt64(ws.errs[k])
			for i := range ksheds {
				ksheds[i] += atomic.LoadInt64(&ws.sheds[k][i])
			}
		}
		if kreq == 0 {
			continue
		}
		perKind[k] = KindStats{
			Requests:    kreq,
			Errors:      kerr,
			Shed429:     ksheds[0],
			Shed503:     ksheds[1],
			Deadline504: ksheds[2],
			P50MS:       ms(h.Quantile(0.50)),
			P90MS:       ms(h.Quantile(0.90)),
			P95MS:       ms(h.Quantile(0.95)),
			P99MS:       ms(h.Quantile(0.99)),
			MaxMS:       ms(h.Max()),
		}
		total.Merge(h)
		requests += kreq
		errs += kerr
	}
	shed429, shed503, dl504 := r.shed429.Load(), r.shed503.Load(), r.dl504.Load()
	good := requests - errs - shed429 - shed503 - dl504
	if good < 0 {
		good = 0
	}
	secs := elapsed.Seconds()
	return &Result{
		Mode:          mode,
		Workers:       r.opts.Workers,
		Duration:      elapsed,
		DurationMS:    elapsed.Milliseconds(),
		Requests:      requests,
		Goodput:       good,
		Errors:        errs,
		Shed429:       shed429,
		Shed503:       shed503,
		Deadline504:   dl504,
		ThroughputRPS: float64(requests) / secs,
		GoodputRPS:    float64(good) / secs,
		P50MS:         ms(total.Quantile(0.50)),
		P95MS:         ms(total.Quantile(0.95)),
		P99MS:         ms(total.Quantile(0.99)),
		MaxMS:         ms(total.Max()),
		PerKind:       perKind,
		Histogram:     total,
	}
}

func ms(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// String renders the one-line run summary.
func (res *Result) String() string {
	return fmt.Sprintf("%s w=%d n=%d good=%.0f/s thru=%.0f/s shed=%d/%d 504=%d err=%d p50=%.1fms p95=%.1fms p99=%.1fms",
		res.Mode, res.Workers, res.Requests, res.GoodputRPS, res.ThroughputRPS,
		res.Shed429, res.Shed503, res.Deadline504, res.Errors, res.P50MS, res.P95MS, res.P99MS)
}

// SortedKinds returns the per-kind keys in stable display order.
func (res *Result) SortedKinds() []OpKind {
	out := make([]OpKind, 0, len(res.PerKind))
	for k := range res.PerKind {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
